package recommend

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"agentrec/internal/ops"
	"agentrec/internal/profile"
)

// This file is the engine's replication layer: the machinery that lets
// every Buyer Agent Server in a multi-server deployment (the paper's
// Fig 3.1 scaled out) answer recommendations from local state.
//
// Each community shard has exactly one owner server (OwnerOf: shard modulo
// server count). Writes are routed to the owner (Router); the owner's
// engine journals them as usual and additionally retains a bounded,
// per-shard, totally ordered tail of JournalRecords (journalFeed). Every
// other server runs a Replicator that tails each owner's feed and applies
// the records to its own engine through the same install paths local writes
// use — so a follower's shard state, durable layout included, converges to
// the owner's. When a follower's cursor predates the retained tail (cold
// start, restart, or a pruned feed) the owner serves a full ShardSnapshot
// instead, built from the same state LoadShard recovery uses; the follower
// replaces the shard wholesale and resumes live tailing from the snapshot's
// sequence number.
//
// The feed is in-memory: its epoch is regenerated each Open, so a follower
// whose cursor carries a stale epoch is forced through snapshot catch-up
// rather than silently resuming against a different history. Sell counts
// replicate exactly because the durable layout attributes them to the
// buyer's shard (see ShardData): a shard's journal alone determines its
// replica, and served totals are the sum over shards.

// Errors reported by the replication layer.
var (
	ErrNoJournalFeed = errors.New("recommend: engine has no journal feed (build with WithJournalFeed)")
	ErrBadShard      = errors.New("recommend: shard out of range")
	ErrShardMismatch = errors.New("recommend: journal record routed to wrong shard (server shard counts differ?)")
)

// Journal record operations.
const (
	OpProfiles = "profiles" // a batch of profile installs for one shard
	OpPurchase = "purchase" // one purchase by one of the shard's consumers
)

// JournalRecord is one replicated mutation of one community shard, in the
// shard's total write order. Profiles are carried marshaled so records
// cross process boundaries unchanged.
type JournalRecord struct {
	Shard     int      `json:"shard"`
	Seq       uint64   `json:"seq"`
	Op        string   `json:"op"`
	Profiles  [][]byte `json:"profiles,omitempty"` // OpProfiles: marshaled profiles, install order
	UserID    string   `json:"user,omitempty"`     // OpPurchase
	ProductID string   `json:"product,omitempty"`  // OpPurchase
}

// PurchasePair is one (consumer, product) ownership edge in a ShardSnapshot.
type PurchasePair struct {
	UserID    string `json:"user"`
	ProductID string `json:"product"`
}

// ShardSnapshot is the catch-up payload: one shard's full state, the same
// three components LoadShard recovers.
type ShardSnapshot struct {
	Profiles  [][]byte         `json:"profiles,omitempty"`
	Purchases []PurchasePair   `json:"purchases,omitempty"`
	Sells     map[string]int64 `json:"sells,omitempty"`
}

// TailResult is one answer to a journal-tail request. Exactly one of
// Records, Snapshot, and Paged is meaningful: Records when the owner could
// serve the cursor from its retained tail (possibly empty when the follower
// is caught up), Snapshot when the follower must catch up wholesale, Paged
// when a transport's frame budget could not carry the reply inline. Seq is
// the sequence number the follower's cursor should hold after applying.
// Head is the owner's feed head (the seq its next record will extend) when
// the reply was built; it can run past Seq when the transport trimmed the
// served records, which is exactly what makes reported lag real.
type TailResult struct {
	Shards   int             `json:"shards"` // owner's shard count, for config-drift detection
	Epoch    uint64          `json:"epoch"`
	Seq      uint64          `json:"seq"`
	Head     uint64          `json:"head"` // owner's feed head (next-1) at reply time
	Records  []JournalRecord `json:"records,omitempty"`
	Snapshot *ShardSnapshot  `json:"snapshot,omitempty"`
	// Paged is set by a transport bridge (internal/replnet) in place of a
	// snapshot its frame budget cannot carry: the follower must transfer
	// the snapshot in pages (Peer.SnapshotPage), starting from the cut
	// pinned at (Epoch, Seq).
	Paged bool `json:"paged,omitempty"`
}

// DefaultJournalTail is how many journal records per shard the feed retains
// for followers unless WithJournalFeed overrides it.
const DefaultJournalTail = 4096

// WithJournalFeed makes the engine retain a bounded per-shard tail of its
// write journal in memory so replicas can tail it (Engine.JournalTail).
// n is the per-shard record retention; n <= 0 means DefaultJournalTail.
// Followers whose cursor falls off the retained tail catch up by shard
// snapshot instead, so retention trades memory for snapshot frequency.
func WithJournalFeed(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = DefaultJournalTail
		}
		e.feedCap = n
	}
}

// journalFeed retains the per-shard record tails. Writers append while
// holding their shard's write lock (lock order shard -> feed.mu), so a
// shard's sequence numbers are assigned in the shard's write order; readers
// holding a shard's read lock therefore observe a seq consistent with the
// shard state they see.
type journalFeed struct {
	epoch uint64
	cap   int

	mu     sync.Mutex
	shards []feedShard
}

type feedShard struct {
	first   uint64 // seq of records[0]; the first record ever is seq 1
	records []JournalRecord
}

func newJournalFeed(nshards, cap int) (*journalFeed, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("recommend: journal feed epoch: %w", err)
	}
	f := &journalFeed{
		epoch:  binary.BigEndian.Uint64(b[:]) | 1, // never 0: zero epoch means "no cursor"
		cap:    cap,
		shards: make([]feedShard, nshards),
	}
	for i := range f.shards {
		f.shards[i].first = 1
	}
	return f, nil
}

// emit appends rec to shard's tail, assigning and returning the next
// sequence number. The caller holds the shard's write lock.
func (f *journalFeed) emit(shard int, rec JournalRecord) uint64 {
	f.mu.Lock()
	fs := &f.shards[shard]
	rec.Shard = shard
	rec.Seq = fs.first + uint64(len(fs.records))
	fs.records = append(fs.records, rec)
	if over := len(fs.records) - f.cap; over > 0 {
		fs.records = append(fs.records[:0:0], fs.records[over:]...)
		fs.first += uint64(over)
	}
	seq := rec.Seq
	f.mu.Unlock()
	return seq
}

// next returns the sequence number the shard's next record will get.
func (f *journalFeed) next(shard int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := &f.shards[shard]
	return fs.first + uint64(len(fs.records))
}

// tailSince returns a copy of shard's records after seq since plus the
// shard's feed head (next-1), or ok=false when the cursor cannot be served
// from the retained tail (epoch mismatch, pruned history, or a cursor from
// a different history running ahead).
func (f *journalFeed) tailSince(shard int, epoch, since uint64) (recs []JournalRecord, head uint64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := &f.shards[shard]
	next := fs.first + uint64(len(fs.records))
	head = next - 1
	if epoch != f.epoch {
		return nil, head, false
	}
	if since+1 < fs.first || since+1 > next {
		return nil, head, false
	}
	out := make([]JournalRecord, next-(since+1))
	copy(out, fs.records[since+1-fs.first:])
	return out, head, true
}

// maxFeedRecordBytes bounds the encoded profile payload of one OpProfiles
// journal record, keeping every record comfortably inside a network frame
// (atp.MaxFrame is 16 MiB; JSON/base64 transport overhead is ~1.4x).
const maxFeedRecordBytes = 4 << 20

// chunkEncoded splits encoded payloads into groups whose byte sizes sum to
// at most limit each (a single oversized payload still gets its own group).
func chunkEncoded(encoded [][]byte, limit int) [][][]byte {
	var out [][][]byte
	var cur [][]byte
	size := 0
	for _, enc := range encoded {
		if len(cur) > 0 && size+len(enc) > limit {
			out = append(out, cur)
			cur, size = nil, 0
		}
		cur = append(cur, enc)
		size += len(enc)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// feedEncodeProfiles marshals profs for feed emission, before any locks are
// taken so an encoding failure never leaves a half-applied write. Returns
// nil without a feed.
func (e *Engine) feedEncodeProfiles(profs []*profile.Profile) ([][]byte, error) {
	if e.feed == nil {
		return nil, nil
	}
	out := make([][]byte, len(profs))
	for i, p := range profs {
		data, err := p.Marshal()
		if err != nil {
			return nil, fmt.Errorf("recommend: encoding profile %s for journal feed: %w", p.UserID, err)
		}
		out[i] = data
	}
	return out, nil
}

// JournalTail answers a follower's tail request for one shard: records
// after (epoch, since) when the retained tail covers the cursor, a full
// ShardSnapshot otherwise. The snapshot is cut under the shard's read lock,
// so it is consistent with the sequence number it carries.
func (e *Engine) JournalTail(shard int, epoch, since uint64) (TailResult, error) {
	if e.feed == nil {
		return TailResult{}, ErrNoJournalFeed
	}
	if shard < 0 || shard >= e.nshards {
		return TailResult{}, fmt.Errorf("%w: %d of %d", ErrBadShard, shard, e.nshards)
	}
	if recs, head, ok := e.feed.tailSince(shard, epoch, since); ok {
		return TailResult{
			Shards:  e.nshards,
			Epoch:   e.feed.epoch,
			Seq:     since + uint64(len(recs)),
			Head:    head,
			Records: recs,
		}, nil
	}
	sh := e.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	seq := e.feed.next(shard) - 1
	snap, err := e.shardSnapshotLocked(sh)
	if err != nil {
		return TailResult{}, err
	}
	return TailResult{Shards: e.nshards, Epoch: e.feed.epoch, Seq: seq, Head: seq, Snapshot: snap}, nil
}

// FeedHeads reports each shard's journal feed head (the seq of the last
// record emitted; 0 when the shard has none), or nil when the engine was
// built without WithJournalFeed. An owner's head is the target a follower
// of the shard must reach to be fully caught up.
func (e *Engine) FeedHeads() []uint64 {
	if e.feed == nil {
		return nil
	}
	out := make([]uint64, e.nshards)
	for s := range out {
		out[s] = e.feed.next(s) - 1
	}
	return out
}

// shardStateLocked returns sh's live state: the in-memory maps for a
// resident shard, the Persister's recovered state for a spilled one — a
// spilled shard accepts no writes while the lock is held, so its durable
// state is its state. Caller holds sh.mu (read suffices: writers are
// excluded, so memory, journal, and feed agree); the returned maps must not
// be mutated.
func (e *Engine) shardStateLocked(sh *shard) (profs []*profile.Profile, purchases map[string]map[string]bool, sells map[string]int64, err error) {
	if sh.resident.Load() {
		profs = make([]*profile.Profile, 0, len(sh.profiles))
		for _, st := range sh.profiles {
			profs = append(profs, st.prof)
		}
		return profs, sh.purchases, sh.sells, nil
	}
	data, err := e.persist.LoadShard(sh.id)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("recommend: reading spilled shard %d state: %w", sh.id, err)
	}
	return data.Profiles, data.Purchases, data.Sells, nil
}

// shardSnapshotLocked serializes sh's full state. Caller holds sh.mu; see
// shardStateLocked for the residency contract.
func (e *Engine) shardSnapshotLocked(sh *shard) (*ShardSnapshot, error) {
	profs, purchases, sells, err := e.shardStateLocked(sh)
	if err != nil {
		return nil, err
	}
	snap := &ShardSnapshot{Sells: make(map[string]int64, len(sells))}
	snap.Profiles = make([][]byte, len(profs))
	for i, p := range profs {
		data, err := p.Marshal()
		if err != nil {
			return nil, fmt.Errorf("recommend: encoding profile %s for snapshot: %w", p.UserID, err)
		}
		snap.Profiles[i] = data
	}
	for user, set := range purchases {
		for pid := range set {
			snap.Purchases = append(snap.Purchases, PurchasePair{UserID: user, ProductID: pid})
		}
	}
	for pid, total := range sells {
		snap.Sells[pid] = total
	}
	return snap, nil
}

// applyJournalRecord applies one replicated mutation to shard, through the
// same install paths local writes take (so it is journaled to this engine's
// own Persister, indexed, and re-emitted on this engine's feed).
func (e *Engine) applyJournalRecord(shard int, rec JournalRecord) error {
	switch rec.Op {
	case OpProfiles:
		profs := make([]*profile.Profile, len(rec.Profiles))
		for i, data := range rec.Profiles {
			p, err := profile.Unmarshal(data)
			if err != nil {
				return fmt.Errorf("recommend: decoding replicated profile: %w", err)
			}
			if e.ShardOf(p.UserID) != shard {
				return fmt.Errorf("%w: user %s", ErrShardMismatch, p.UserID)
			}
			profs[i] = p
		}
		return e.installShardProfiles(e.shards[shard], profs)
	case OpPurchase:
		if e.ShardOf(rec.UserID) != shard {
			return fmt.Errorf("%w: user %s", ErrShardMismatch, rec.UserID)
		}
		return e.RecordPurchase(rec.UserID, rec.ProductID)
	default:
		return fmt.Errorf("recommend: unknown journal op %q", rec.Op)
	}
}

// applyShardSnapshot replaces shard's entire state with snap: durable
// buckets (Persister.SaveShard), shard maps, candidate-index postings, and
// the served sell totals (adjusted by delta so other shards' contributions
// are untouched).
func (e *Engine) applyShardSnapshot(shard int, snap *ShardSnapshot) error {
	if shard < 0 || shard >= e.nshards {
		return fmt.Errorf("%w: %d of %d", ErrBadShard, shard, e.nshards)
	}
	newProfiles := make(map[string]*stored, len(snap.Profiles))
	profs := make([]*profile.Profile, 0, len(snap.Profiles))
	for _, data := range snap.Profiles {
		p, err := profile.Unmarshal(data)
		if err != nil {
			return fmt.Errorf("recommend: decoding snapshot profile: %w", err)
		}
		if e.ShardOf(p.UserID) != shard {
			return fmt.Errorf("%w: user %s", ErrShardMismatch, p.UserID)
		}
		newProfiles[p.UserID] = &stored{prof: p, sum: p.Summary()}
		profs = append(profs, p)
	}
	newPurchases := make(map[string]map[string]bool)
	for _, pp := range snap.Purchases {
		set := newPurchases[pp.UserID]
		if set == nil {
			set = make(map[string]bool)
			newPurchases[pp.UserID] = set
		}
		set[pp.ProductID] = true
	}
	newSells := make(map[string]int64, len(snap.Sells))
	for pid, total := range snap.Sells {
		newSells[pid] = total
	}

	sh := e.shards[shard]
	if err := e.lockResidentW(sh); err != nil {
		return err
	}
	if e.persist != nil {
		data := ShardData{Profiles: profs, Purchases: newPurchases, Sells: newSells}
		if err := e.persist.SaveShard(sh.id, data); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	// Reconcile the candidate index: consumers gone from the shard lose
	// their postings (an empty replacement summary removes without
	// installing), everyone else transitions prev -> new. A consumer whose
	// profile content the snapshot did not change produces no transition
	// at all — steady-state catch-up of a fat shard (most snapshots repeat
	// most profiles) touches only the postings that actually moved instead
	// of rebuilding the whole index, so paged bootstraps cannot stall the
	// pull loop on index churn (asserted via Stats.IndexWrites).
	changes := make([]postingChange, 0, len(newProfiles))
	for id, old := range sh.profiles {
		if _, still := newProfiles[id]; !still {
			changes = append(changes, postingChange{prev: old.sum, sum: &profile.Summary{UserID: id}})
		}
	}
	for _, st := range newProfiles {
		var prev *profile.Summary
		if old := sh.profiles[st.prof.UserID]; old != nil {
			prev = old.sum
			if prev.Equal(st.sum) {
				continue // identical content: postings already canonical
			}
		}
		changes = append(changes, postingChange{prev: prev, sum: st.sum})
	}
	// Move the served totals by the attribution delta.
	for pid, total := range newSells {
		if d := total - sh.sells[pid]; d != 0 {
			e.sellFor(pid).add(pid, d)
		}
	}
	for pid, old := range sh.sells {
		if _, still := newSells[pid]; !still {
			e.sellFor(pid).add(pid, -old)
		}
	}
	sh.profiles = newProfiles
	sh.purchases = newPurchases
	sh.sells = newSells
	sh.gen.Add(1)
	e.index.updateBatch(changes)
	sh.mu.Unlock()
	e.maybeEvict(sh)
	// One snapshot catch-up rewrites a whole shard's durable buckets — the
	// follower pressure that outgrows WALs fastest — so evaluate the
	// compaction policy unconditionally rather than sampling.
	e.checkCompaction()
	return nil
}

// --- ownership and write routing ---

// OwnerOf reports which of servers owns shard under the static (epoch-1)
// assignment: the server every write for the shard is routed to, and the
// one followers tail it from. Every server must agree on the shard count
// for the map to be consistent. Deployments with a coordinator route by an
// OwnershipTable instead (see ownership.go); StaticOwnership freezes this
// function into the table's epoch-1 map, so both paths agree until the
// coordinator moves a shard.
func OwnerOf(shard, servers int) int {
	if servers <= 0 {
		return 0
	}
	return shard % servers
}

// Writer is the community write surface: the subset of Engine the write
// path needs, satisfied by both *Engine (local writes) and *Router
// (ownership-routed writes), so the Buyer Agent Server does not care
// whether it is the owner.
type Writer interface {
	SetProfile(p *profile.Profile) error
	SetProfiles(ps []*profile.Profile) error
	RecordPurchase(userID, productID string) error
	RecordPurchaseAt(userID, productID string, at time.Time) error
}

var (
	_ Writer = (*Engine)(nil)
	_ Writer = (*Router)(nil)
)

// Router routes community writes to the shard owner's engine while reads
// stay on the local engine. writers[i] is the write surface of server i
// (the local engine for self, a remote forwarder for peers). Ownership
// comes from the router's OwnershipTable, re-read per write so a map the
// coordinator advances re-targets routing immediately; without
// RouteWithOwnership the table holds the static epoch-1 map and routing is
// the historical shard%N.
type Router struct {
	local   *Engine
	self    int
	writers []Writer
	owners  *OwnershipTable
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// RouteWithOwnership makes the router resolve shard owners through t (a
// live, coordinator-leased table) instead of the static map. Local writes
// additionally require t's lease to be live: a deposed server refuses its
// own shards instead of acking writes nobody replicates.
func RouteWithOwnership(t *OwnershipTable) RouterOption {
	return func(r *Router) {
		if t != nil {
			r.owners = t
		}
	}
}

// NewRouter returns a write router for server self among len(writers)
// servers. writers[self] may be nil; the local engine is used.
func NewRouter(local *Engine, self int, writers []Writer, opts ...RouterOption) (*Router, error) {
	if self < 0 || self >= len(writers) {
		return nil, fmt.Errorf("recommend: router self %d out of %d servers", self, len(writers))
	}
	ws := make([]Writer, len(writers))
	copy(ws, writers)
	ws[self] = local
	for i, w := range ws {
		if w == nil {
			return nil, fmt.Errorf("recommend: router writer %d is nil", i)
		}
	}
	r := &Router{local: local, self: self, writers: ws}
	for _, opt := range opts {
		opt(r)
	}
	if r.owners == nil {
		r.owners = NewOwnershipTable(StaticOwnership(local.nshards, len(ws)))
	}
	return r, nil
}

// writerFor resolves userID's current owner to a write surface, enforcing
// the lease discipline on the local branch.
func (r *Router) writerFor(userID string) (Writer, error) {
	owner := r.owners.Owner(r.local.ShardOf(userID))
	if owner < 0 || owner >= len(r.writers) {
		return nil, fmt.Errorf("%w: no server owns user %s (owner %d of %d)",
			ErrNotOwner, userID, owner, len(r.writers))
	}
	if owner == r.self {
		if err := r.owners.Expired(); err != nil {
			return nil, err
		}
	}
	return r.writers[owner], nil
}

// SetProfile installs the profile on the owning server.
func (r *Router) SetProfile(p *profile.Profile) error {
	w, err := r.writerFor(p.UserID)
	if err != nil {
		return err
	}
	return w.SetProfile(p)
}

// SetProfiles bulk-installs profiles, grouped per owning server with
// per-server order preserved.
func (r *Router) SetProfiles(ps []*profile.Profile) error {
	byServer := make([][]*profile.Profile, len(r.writers))
	for _, p := range ps {
		owner := r.owners.Owner(r.local.ShardOf(p.UserID))
		if owner < 0 || owner >= len(r.writers) {
			return fmt.Errorf("%w: no server owns user %s (owner %d of %d)",
				ErrNotOwner, p.UserID, owner, len(r.writers))
		}
		byServer[owner] = append(byServer[owner], p)
	}
	for i, group := range byServer {
		if len(group) == 0 {
			continue
		}
		if i == r.self {
			if err := r.owners.Expired(); err != nil {
				return err
			}
		}
		if err := r.writers[i].SetProfiles(group); err != nil {
			return err
		}
	}
	return nil
}

// RecordPurchase records the purchase on the owning server.
func (r *Router) RecordPurchase(userID, productID string) error {
	w, err := r.writerFor(userID)
	if err != nil {
		return err
	}
	return w.RecordPurchase(userID, productID)
}

// RecordPurchaseAt records the timestamped purchase on the owning server.
func (r *Router) RecordPurchaseAt(userID, productID string, at time.Time) error {
	w, err := r.writerFor(userID)
	if err != nil {
		return err
	}
	return w.RecordPurchaseAt(userID, productID, at)
}

// --- the replicator ---

// Peer is one remote server's journal-tail surface. LocalPeer adapts an
// in-process engine; internal/replnet adapts a TCP peer over atp.
// SnapshotPage is the paged catch-up path: only a transport that answered a
// tail request with TailResult.Paged ever receives it.
type Peer interface {
	JournalTail(ctx context.Context, shard int, epoch, since uint64) (TailResult, error)
	SnapshotPage(ctx context.Context, shard int, epoch, seq uint64, token string) (SnapshotPage, error)
}

// LocalPeer adapts an in-process Engine as a Peer (the platform.Config
// single-process deployment of Fig 3.1). It never sets TailResult.Paged —
// there is no frame budget in process — so its SnapshotPage exists only to
// satisfy the interface.
type LocalPeer struct{ Engine *Engine }

// JournalTail implements Peer.
func (p LocalPeer) JournalTail(_ context.Context, shard int, epoch, since uint64) (TailResult, error) {
	return p.Engine.JournalTail(shard, epoch, since)
}

// SnapshotPage implements Peer.
func (p LocalPeer) SnapshotPage(_ context.Context, shard int, epoch, seq uint64, token string) (SnapshotPage, error) {
	return p.Engine.SnapshotPage(shard, epoch, seq, token, 0)
}

// ReplicatorOption configures a Replicator.
type ReplicatorOption func(*Replicator)

// WithPullInterval sets how often the background loop tails every owner
// (default 100ms).
func WithPullInterval(d time.Duration) ReplicatorOption {
	return func(r *Replicator) {
		if d > 0 {
			r.interval = d
		}
	}
}

// PullWithOwnership makes the replicator resolve shard owners through t (a
// live, coordinator-leased table) instead of the static map. Each Sync
// pass re-reads the table, so a map transition re-targets pulls on the
// next pass: a newly followed shard starts a fresh cursor (the new owner's
// feed epoch differs, forcing snapshot catch-up — the existing
// cursor-reset path), and a newly owned shard stops being pulled.
func PullWithOwnership(t *OwnershipTable) ReplicatorOption {
	return func(r *Replicator) {
		if t != nil {
			r.owners = t
		}
	}
}

// replCursor is the follower's position in one shard's journal.
type replCursor struct{ epoch, seq uint64 }

// ShardReplication is one shard's replication status on this follower.
// JSON tags follow the agent-first convention; EventView materializes the
// derived Lag as the wire's `lag_records`.
type ShardReplication struct {
	Shard      int    `json:"shard"`
	Owner      int    `json:"owner"`
	Epoch      uint64 `json:"epoch"`                // owner feed epoch the cursor belongs to (0 = never synced)
	AppliedSeq uint64 `json:"applied_seq"`          // last journal record applied locally
	OwnerSeq   uint64 `json:"owner_seq"`            // owner's feed head as of the last successful pull
	Records    uint64 `json:"records"`              // journal records applied since construction
	Snapshots  uint64 `json:"snapshots"`            // snapshot catch-ups since construction
	Pages      uint64 `json:"pages"`                // snapshot pages transferred (paged catch-ups only)
	Restarts   uint64 `json:"restarts"`             // paged transfers restarted because the owner's cut moved
	LastError  string `json:"last_error,omitempty"` // most recent pull/apply error ("" when healthy)
}

// Lag is how many journal records this shard's replica was behind the
// owner at the last successful pull.
func (s ShardReplication) Lag() uint64 {
	if s.OwnerSeq <= s.AppliedSeq {
		return 0
	}
	return s.OwnerSeq - s.AppliedSeq
}

// ReplicationStats is a Replicator's view of every shard it follows.
type ReplicationStats struct {
	Self    int                `json:"self"`
	Servers int                `json:"servers"`
	Shards  []ShardReplication `json:"shards,omitempty"` // one entry per non-owned shard
}

// Lag sums the per-shard lags: total journal records this server's replicas
// were behind their owners at the last pulls.
func (st ReplicationStats) Lag() uint64 {
	var total uint64
	for _, s := range st.Shards {
		total += s.Lag()
	}
	return total
}

// Replicator keeps one server's engine converged with the shards it does
// not own by tailing each owner's journal. Construct with NewReplicator;
// call Sync for a deterministic catch-up pass (tests, post-seed barriers)
// or Start for the background loop, and Close when done.
type Replicator struct {
	e        *Engine
	self     int
	peers    []Peer
	interval time.Duration
	owners   *OwnershipTable

	// Event plane (nil unless WithReplicationEvents; see events.go).
	events      *ops.Bus
	eventServer int

	syncMu  sync.Mutex // serializes passes (ticker vs explicit Sync)
	mu      sync.Mutex // guards cursors, stats, saved transfers, and lastLag
	curs    []replCursor
	stats   map[int]*ShardReplication
	xfers   map[int]*pagedTransfer // in-flight paged transfers, resumable across pulls
	lastLag map[int]uint64         // per-shard lag at the previous successful pull

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewReplicator returns a replicator for server self among len(peers)
// servers; peers[i] tails server i (peers[self] is ignored). The engine
// must use the same shard count as every peer.
func NewReplicator(e *Engine, self int, peers []Peer, opts ...ReplicatorOption) (*Replicator, error) {
	if self < 0 || self >= len(peers) {
		return nil, fmt.Errorf("recommend: replicator self %d out of %d servers", self, len(peers))
	}
	r := &Replicator{
		e:        e,
		self:     self,
		peers:    append([]Peer(nil), peers...),
		interval: 100 * time.Millisecond,
		curs:     make([]replCursor, e.nshards),
		stats:    make(map[int]*ShardReplication),
		xfers:    make(map[int]*pagedTransfer),
		lastLag:  make(map[int]uint64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.owners == nil {
		r.owners = NewOwnershipTable(StaticOwnership(e.nshards, len(peers)))
	}
	initial := r.owners.Current()
	for s := 0; s < e.nshards; s++ {
		if owner := initial.Owner(s); owner != self {
			if owner < 0 || owner >= len(peers) || peers[owner] == nil {
				return nil, fmt.Errorf("recommend: replicator has no peer for server %d (owner of shard %d)", owner, s)
			}
			r.stats[s] = &ShardReplication{Shard: s, Owner: owner}
		}
	}
	return r, nil
}

// Sync performs one full catch-up pass over every non-owned shard and
// returns the first error encountered (remaining shards are still pulled).
// After a nil return, this engine has applied every record the owners had
// journaled when the pass reached them.
func (r *Replicator) Sync(ctx context.Context) error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	var firstErr error
	for s := 0; s < r.e.nshards; s++ {
		owner := r.owners.Owner(s)
		if owner == r.self {
			// Promoted (or always owned): this server's feed is now the
			// shard's history — drop the follower bookkeeping so Stats
			// reports only shards actually followed.
			r.mu.Lock()
			if _, followed := r.stats[s]; followed {
				delete(r.stats, s)
				delete(r.lastLag, s)
				delete(r.xfers, s)
				r.curs[s] = replCursor{}
			}
			r.mu.Unlock()
			continue
		}
		// Ensure follower bookkeeping exists and tracks the current owner.
		// A changed owner keeps the old cursor: its feed epoch belongs to
		// the previous owner, so the first pull from the new owner falls
		// back to snapshot catch-up — the same path a feed restart takes.
		r.mu.Lock()
		st := r.stats[s]
		if st == nil {
			st = &ShardReplication{Shard: s, Owner: owner}
			r.stats[s] = st
		} else if st.Owner != owner {
			st.Owner = owner
		}
		r.mu.Unlock()
		if owner < 0 || owner >= len(r.peers) || r.peers[owner] == nil {
			err := fmt.Errorf("recommend: no peer for server %d (owner of shard %d)", owner, s)
			r.mu.Lock()
			st.LastError = err.Error()
			r.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := r.pullShard(ctx, s, owner); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AppliedSeqs reports, per shard, how far this server's replica has
// advanced in the owning feed's numbering: the follower cursor's applied
// sequence for followed shards, the engine's own feed head for owned ones.
// This is the catch-up evidence servers attach to coordinator lease
// renewals — followers of the same owner report in the same numbering, so
// the authority can promote the most caught-up one exactly.
func (r *Replicator) AppliedSeqs() []uint64 {
	heads := r.e.FeedHeads()
	out := make([]uint64, r.e.nshards)
	r.mu.Lock()
	for s := 0; s < r.e.nshards; s++ {
		if st, ok := r.stats[s]; ok {
			out[s] = st.AppliedSeq
		} else if heads != nil {
			out[s] = heads[s]
		}
	}
	r.mu.Unlock()
	return out
}

// pullShard tails shard from owner once and applies what came back.
func (r *Replicator) pullShard(ctx context.Context, shard, owner int) (err error) {
	defer func() {
		var lagEv ops.Event
		publish := false
		r.mu.Lock()
		st := r.stats[shard]
		if err != nil {
			st.LastError = err.Error()
		} else {
			st.LastError = ""
			if r.events != nil {
				// Lag transition: this pull observed a different backlog
				// than the previous one. Falling behind and catching up are
				// both edges; steady lag is silent.
				if lag, prev := st.Lag(), r.lastLag[shard]; lag != prev {
					r.lastLag[shard] = lag
					lagEv = ops.Event{Kind: ops.KindLag, Lag: ops.LagEvent{
						Server:         r.eventServer,
						Shard:          shard,
						Owner:          st.Owner,
						LagRecords:     lag,
						PrevLagRecords: prev,
					}}
					publish = true
				}
			}
		}
		r.mu.Unlock()
		if publish {
			r.events.Publish(lagEv)
		}
	}()

	r.mu.Lock()
	cur := r.curs[shard]
	r.mu.Unlock()
	tr, err := r.peers[owner].JournalTail(ctx, shard, cur.epoch, cur.seq)
	if err != nil {
		return fmt.Errorf("recommend: tailing shard %d from server %d: %w", shard, owner, err)
	}
	if tr.Shards != r.e.nshards {
		return fmt.Errorf("%w: owner has %d shards, follower %d", ErrShardMismatch, tr.Shards, r.e.nshards)
	}
	if tr.Paged {
		return r.pullShardPaged(ctx, shard, owner, tr.Epoch, tr.Seq)
	}
	// Any non-paged reply obsoletes a saved partial transfer for the shard.
	r.mu.Lock()
	delete(r.xfers, shard)
	r.mu.Unlock()
	if tr.Snapshot != nil {
		if err := r.e.applyShardSnapshot(shard, tr.Snapshot); err != nil {
			return err
		}
		r.mu.Lock()
		r.curs[shard] = replCursor{epoch: tr.Epoch, seq: tr.Seq}
		st := r.stats[shard]
		st.Epoch, st.AppliedSeq, st.OwnerSeq = tr.Epoch, tr.Seq, headOf(tr, tr.Seq)
		st.Snapshots++
		r.mu.Unlock()
		return nil
	}
	seq := cur.seq
	for _, rec := range tr.Records {
		if rec.Seq != seq+1 {
			// A hole means the tail and our cursor disagree; reset so the
			// next pull falls back to snapshot catch-up.
			r.mu.Lock()
			r.curs[shard] = replCursor{}
			r.mu.Unlock()
			return fmt.Errorf("recommend: shard %d journal gap: have %d, next record %d", shard, seq, rec.Seq)
		}
		if err := r.e.applyJournalRecord(shard, rec); err != nil {
			return err
		}
		seq = rec.Seq
		r.mu.Lock()
		r.curs[shard] = replCursor{epoch: tr.Epoch, seq: seq}
		r.stats[shard].Records++
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.curs[shard] = replCursor{epoch: tr.Epoch, seq: seq}
	st := r.stats[shard]
	// OwnerSeq is the owner's feed head, not the reply's last seq: a reply
	// the transport trimmed to a prefix leaves the follower genuinely
	// behind, and Lag() must say so.
	st.Epoch, st.AppliedSeq, st.OwnerSeq = tr.Epoch, seq, headOf(tr, seq)
	r.mu.Unlock()
	return nil
}

// headOf is the owner's feed head carried in the reply, clamped so lag can
// never go negative against the sequence the follower just applied to.
func headOf(tr TailResult, seq uint64) uint64 {
	if tr.Head < seq {
		return seq
	}
	return tr.Head
}

// noteOwnerHead advances the shard's observed owner head without touching
// the applied cursor, so Lag() is real while a multi-pull paged bootstrap
// is still in flight (the follower is maximally behind exactly then).
// Caller holds r.mu.
func (r *Replicator) noteOwnerHead(shard int, head uint64) {
	if st := r.stats[shard]; st.OwnerSeq < head {
		st.OwnerSeq = head
	}
}

// maxPagedRestarts bounds how many times one pullShardPaged call lets the
// owner restart the transfer (the cut moves whenever the shard takes a
// write mid-transfer). Past the bound the pull reports an error and the
// next Sync tries again — a hot shard makes progress once its writes pause
// for one transfer, and the error keeps the stall visible in Stats.
const maxPagedRestarts = 8

// pagedTransfer is the saved progress of one interrupted paged transfer:
// the pin it runs under, the continuation token to ask for next, and the
// pages accumulated so far. Saving it across pulls means a bootstrap too
// large for one pull's context (the background loop bounds each Sync) makes
// forward progress every tick instead of re-downloading from scratch; the
// pin check keeps resumption exact — if the owner's cut moved meanwhile,
// the next pull's marker carries a different pin and the saved transfer is
// discarded.
type pagedTransfer struct {
	epoch, seq uint64
	token      string
	asm        snapshotAssembler
}

// pullShardPaged transfers shard's snapshot from owner in bounded pages
// pinned at (epoch, seq), buffering them and applying the reassembled
// snapshot wholesale. A page carrying a different (epoch, seq) than
// requested is the first page of a transfer the owner restarted because the
// pinned cut was gone; the buffered pages are discarded and accumulation
// starts over at the new pin.
func (r *Replicator) pullShardPaged(ctx context.Context, shard, owner int, epoch, seq uint64) error {
	// Resume the saved transfer when the owner's pin has not moved since
	// the pull that was interrupted.
	var asm snapshotAssembler
	token := ""
	r.mu.Lock()
	if x := r.xfers[shard]; x != nil && x.epoch == epoch && x.seq == seq {
		asm, token = x.asm, x.token
	}
	delete(r.xfers, shard)
	r.noteOwnerHead(shard, seq)
	r.mu.Unlock()
	restarts := 0
	for {
		pg, err := r.peers[owner].SnapshotPage(ctx, shard, epoch, seq, token)
		if err != nil {
			// Save progress: if the pin is still live on the next pull, the
			// transfer resumes at this token instead of starting over.
			r.mu.Lock()
			r.xfers[shard] = &pagedTransfer{epoch: epoch, seq: seq, token: token, asm: asm}
			r.mu.Unlock()
			return fmt.Errorf("recommend: paging shard %d snapshot from server %d: %w", shard, owner, err)
		}
		if pg.Shards != r.e.nshards {
			return fmt.Errorf("%w: owner has %d shards, follower %d", ErrShardMismatch, pg.Shards, r.e.nshards)
		}
		if pg.Epoch != epoch || pg.Seq != seq {
			if restarts++; restarts > maxPagedRestarts {
				return fmt.Errorf("recommend: shard %d snapshot cut moved %d times mid-transfer (hot shard); retrying on the next pull", shard, restarts)
			}
			epoch, seq, token = pg.Epoch, pg.Seq, ""
			asm.reset()
			r.mu.Lock()
			r.stats[shard].Restarts++
			r.noteOwnerHead(shard, seq)
			r.mu.Unlock()
		}
		asm.add(pg)
		r.mu.Lock()
		r.stats[shard].Pages++
		r.mu.Unlock()
		if pg.Next == "" {
			break
		}
		token = pg.Next
	}
	if err := r.e.applyShardSnapshot(shard, asm.snapshot()); err != nil {
		return err
	}
	r.mu.Lock()
	r.curs[shard] = replCursor{epoch: epoch, seq: seq}
	st := r.stats[shard]
	st.Epoch, st.AppliedSeq, st.OwnerSeq = epoch, seq, seq
	st.Snapshots++
	r.mu.Unlock()
	return nil
}

// Start launches the background tail loop. It is idempotent.
func (r *Replicator) Start() {
	r.startOnce.Do(func() {
		go func() {
			defer close(r.done)
			t := time.NewTicker(r.interval)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				r.Sync(ctx) // per-shard errors are kept in Stats
				cancel()
			}
		}()
	})
}

// Run drives the pull loop under the caller's lifecycle: it ticks like
// Start's background loop but in the calling goroutine, returning ctx.Err()
// when ctx is cancelled or nil when Close is called. Run and Start are
// alternatives — a daemon that owns a shutdown context (platformd's task
// group) uses Run; embedders that just want fire-and-forget use Start.
func (r *Replicator) Run(ctx context.Context) error {
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.stop:
			return nil
		case <-t.C:
		}
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		r.Sync(sctx) // per-shard errors are kept in Stats
		cancel()
	}
}

// Close stops the background loop (if started) and waits for it.
func (r *Replicator) Close() error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.startOnce.Do(func() { close(r.done) }) // never started: unblock the wait
	<-r.done
	return nil
}

// Stats reports per-shard replication status and lag, ordered by shard.
func (r *Replicator) Stats() ReplicationStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := ReplicationStats{Self: r.self, Servers: len(r.peers)}
	for s := 0; s < r.e.nshards; s++ {
		if st, ok := r.stats[s]; ok {
			out.Shards = append(out.Shards, *st)
		}
	}
	return out
}
