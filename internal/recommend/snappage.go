package recommend

// Paged snapshot catch-up. A whole-shard ShardSnapshot can outgrow any
// transport frame budget, so a cold follower of a large shard must be able
// to transfer the snapshot in bounded pages instead of one reply. The
// protocol is stateless on the owner:
//
//   - The cut is pinned to one (epoch, seq): the follower's first page
//     request names the pin it was handed (or a stale one), and every page
//     is cut from live state under the shard's read lock only after
//     verifying the feed still sits exactly at that pin. Any write moves
//     the seq, so an unchanged pin proves the state is the same cut.
//   - Pages walk the shard in a stable key order — profiles ascending by
//     consumer id, then purchases ascending by (consumer, product), then
//     sell totals ascending by product — so a continuation token (an opaque
//     (section, start-key) cursor) names an exact resume point.
//   - If the pin is gone (the shard mutated mid-transfer, or the owner
//     restarted and regenerated its feed epoch), the owner restarts the
//     transfer: it re-pins at its current cut and serves the first page of
//     the new transfer. The follower detects the changed (epoch, seq),
//     discards the pages it buffered, and accumulates afresh.
//
// The follower side lives in Replicator.pullShardPaged; the transport
// bridge (the "snap-page" journal sub-operation and the per-page byte
// budget) in internal/replnet.

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strings"

	"agentrec/internal/profile"
)

// SellCount is one product's sell total attributed to the paged shard, the
// ordered-page form of ShardSnapshot.Sells.
type SellCount struct {
	ProductID string `json:"product"`
	Total     int64  `json:"total"`
}

// SnapshotPage is one page of a paged shard-snapshot transfer. Every page
// carries the (Epoch, Seq) pin of the cut it belongs to; a page whose pin
// differs from the one the follower requested is the first page of a
// restarted transfer. Next is the continuation token for the following
// page, opaque to the follower; empty means this page completes the
// snapshot.
type SnapshotPage struct {
	Shards    int            `json:"shards"` // owner's shard count, for config-drift detection
	Epoch     uint64         `json:"epoch"`
	Seq       uint64         `json:"seq"`
	Profiles  [][]byte       `json:"profiles,omitempty"` // marshaled, ascending consumer id
	Purchases []PurchasePair `json:"purchases,omitempty"`
	Sells     []SellCount    `json:"sells,omitempty"`
	Next      string         `json:"next,omitempty"`
}

// Page sections, in transfer order.
const (
	pageSecProfiles  = "p"
	pageSecPurchases = "u"
	pageSecSells     = "s"
)

// encodePageToken builds the opaque continuation token: the section and the
// key the next page starts at (inclusive), base64 so the NUL separator in
// purchase keys survives any textual transport.
func encodePageToken(section, startKey string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(section + "\x00" + startKey))
}

// decodePageToken parses a continuation token. The empty token means the
// start of the transfer.
func decodePageToken(token string) (section, startKey string, err error) {
	if token == "" {
		return pageSecProfiles, "", nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return "", "", fmt.Errorf("recommend: malformed snapshot page token: %w", err)
	}
	section, startKey, ok := strings.Cut(string(raw), "\x00")
	if !ok || (section != pageSecProfiles && section != pageSecPurchases && section != pageSecSells) {
		return "", "", fmt.Errorf("recommend: malformed snapshot page token %q", token)
	}
	return section, startKey, nil
}

// Per-entry size estimates for the page budget, matching the JSON wire
// encoding closely enough that a page at the budget still fits the caller's
// frame: a marshaled profile travels base64-encoded inside the page JSON
// (4/3 expansion plus quotes, and base64 output never needs escaping),
// purchase pairs and sell counts as small objects with fixed field names
// whose id strings are charged at their escaped length.
func profileEntryCost(encLen int) int { return (encLen+2)/3*4 + 4 }
func purchaseEntryCost(p PurchasePair) int {
	return jsonStringCost(p.UserID) + jsonStringCost(p.ProductID) + 24
}
func sellEntryCost(pid string) int { return jsonStringCost(pid) + 40 }

// jsonStringCost is the encoded length of s inside a JSON string: ids are
// not guaranteed printable, and an estimate that ignored escaping could
// build a page up to 6x its budget — enough to breach the transport's hard
// frame cap, the exact wedge paging exists to remove.
func jsonStringCost(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		// U+2028/U+2029 (E2 80 A8/A9) also encode as \u202X: 6 bytes for 3.
		if s[i] == 0xE2 && i+2 < len(s) && s[i+1] == 0x80 && (s[i+2] == 0xA8 || s[i+2] == 0xA9) {
			n += 6
			i += 2
			continue
		}
		switch c := s[i]; {
		case c == '"' || c == '\\':
			n += 2
		case c < 0x20, c == '<', c == '>', c == '&': // \u00XX (json HTML-escapes <>& too)
			n += 6
		default:
			n++
		}
	}
	return n
}

// SnapshotPage serves one page of shard's snapshot for the cut pinned at
// (epoch, seq); token resumes a transfer in flight (empty: from the start).
// maxBytes bounds the page's estimated encoded size (<= 0 for a default);
// a single entry larger than the whole budget is served as a page of its
// own rather than erroring, leaving the transport's hard frame cap as the
// only real ceiling. If the pin no longer matches the owner's live state
// the transfer restarts: the reply is the first page of a fresh cut, its
// changed (Epoch, Seq) telling the follower to discard what it buffered.
// A spilled shard is paged from the Persister without faulting it in —
// note that costs one full LoadShard per page while the lock is held;
// followers of routinely-spilled large shards should raise the resident
// cap on the owner (paging straight from the Persister's ordered buckets
// is the eventual fix).
func (e *Engine) SnapshotPage(shard int, epoch, seq uint64, token string, maxBytes int) (SnapshotPage, error) {
	if e.feed == nil {
		return SnapshotPage{}, ErrNoJournalFeed
	}
	if shard < 0 || shard >= e.nshards {
		return SnapshotPage{}, fmt.Errorf("%w: %d of %d", ErrBadShard, shard, e.nshards)
	}
	if maxBytes <= 0 {
		maxBytes = maxFeedRecordBytes
	}
	sh := e.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if cur := e.feed.next(shard) - 1; epoch != e.feed.epoch || seq != cur {
		// The pinned cut is gone: the shard mutated since the pin (every
		// write bumps the seq) or the owner restarted (fresh epoch).
		// Restart the transfer at the current cut.
		epoch, seq, token = e.feed.epoch, cur, ""
	}
	section, startKey, err := decodePageToken(token)
	if err != nil {
		return SnapshotPage{}, err
	}
	profs, purchases, sells, err := e.shardStateLocked(sh)
	if err != nil {
		return SnapshotPage{}, err
	}

	pg := SnapshotPage{Shards: e.nshards, Epoch: epoch, Seq: seq}
	used := 0
	// fits reports whether an entry of the given cost may join the page,
	// closing the page at next (section, key) when it may not. A lone
	// oversized entry is always admitted.
	fits := func(cost int, sec, key string) bool {
		if used > 0 && used+cost > maxBytes {
			pg.Next = encodePageToken(sec, key)
			return false
		}
		used += cost
		return true
	}

	if section == pageSecProfiles {
		ids := make([]string, 0, len(profs))
		byID := make(map[string]*profile.Profile, len(profs))
		for _, p := range profs {
			if p.UserID < startKey {
				continue
			}
			ids = append(ids, p.UserID)
			byID[p.UserID] = p
		}
		sort.Strings(ids)
		for _, id := range ids {
			// Marshal lazily: once the page closes, the remaining profiles
			// (potentially the whole tail of a large shard) are never
			// encoded on this request.
			enc, err := byID[id].Marshal()
			if err != nil {
				return SnapshotPage{}, fmt.Errorf("recommend: encoding profile %s for snapshot page: %w", id, err)
			}
			if !fits(profileEntryCost(len(enc)), pageSecProfiles, id) {
				return pg, nil
			}
			pg.Profiles = append(pg.Profiles, enc)
		}
		section, startKey = pageSecPurchases, ""
	}

	if section == pageSecPurchases {
		pairs := make([]PurchasePair, 0, len(purchases))
		for user, set := range purchases {
			for pid := range set {
				pp := PurchasePair{UserID: user, ProductID: pid}
				if purchaseKey(pp) >= startKey {
					pairs = append(pairs, pp)
				}
			}
		}
		sort.Slice(pairs, func(i, j int) bool { return purchaseKey(pairs[i]) < purchaseKey(pairs[j]) })
		for _, pp := range pairs {
			if !fits(purchaseEntryCost(pp), pageSecPurchases, purchaseKey(pp)) {
				return pg, nil
			}
			pg.Purchases = append(pg.Purchases, pp)
		}
		startKey = ""
	}

	pids := make([]string, 0, len(sells))
	for pid := range sells {
		if pid >= startKey {
			pids = append(pids, pid)
		}
	}
	sort.Strings(pids)
	for _, pid := range pids {
		if !fits(sellEntryCost(pid), pageSecSells, pid) {
			return pg, nil
		}
		pg.Sells = append(pg.Sells, SellCount{ProductID: pid, Total: sells[pid]})
	}
	return pg, nil // Next stays empty: the snapshot is complete
}

// purchaseKey is the stable sort key of one purchase pair; NUL sorts before
// every printable byte, so a consumer's pairs group contiguously.
func purchaseKey(p PurchasePair) string { return p.UserID + "\x00" + p.ProductID }

// snapshotAssembler accumulates the pages of one transfer back into the
// ShardSnapshot the install path applies wholesale.
type snapshotAssembler struct {
	snap ShardSnapshot
}

func (a *snapshotAssembler) reset() { a.snap = ShardSnapshot{} }

func (a *snapshotAssembler) add(pg SnapshotPage) {
	a.snap.Profiles = append(a.snap.Profiles, pg.Profiles...)
	a.snap.Purchases = append(a.snap.Purchases, pg.Purchases...)
	if len(pg.Sells) > 0 {
		if a.snap.Sells == nil {
			a.snap.Sells = make(map[string]int64)
		}
		for _, sc := range pg.Sells {
			a.snap.Sells[sc.ProductID] = sc.Total
		}
	}
}

func (a *snapshotAssembler) snapshot() *ShardSnapshot { return &a.snap }
