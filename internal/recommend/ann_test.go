package recommend

// Tests for the LSH approximate neighbour search: recall against the exact
// ranking, Fig 4.5 gate equivalence on the shortlist path, byte-identical
// fallback when ANN is off or the category is small, and a -race soak that
// rehashes live buckets under concurrent readers. The recall tests use
// planted-cluster communities large enough that the shortlist actually
// engages (annMinShortlist) and bucket depth forces a rehash past
// annMinBits.

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/profile"
	"agentrec/internal/similarity"
	"agentrec/internal/workload"
)

// annCommunity plants nclusters taste clusters in one category: consumers
// perturb a shared cluster center, so "most similar" has ground truth and
// top-10 neighbours are genuinely close. scale multiplies one half of the
// community's evidence weights, giving the discard gate something to cut.
func annCommunity(t testing.TB, n, nclusters int, seed uint64, scaleHalf bool) []*profile.Profile {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xa11))
	const centerTerms = 10
	centers := make([][]string, nclusters)
	for c := range centers {
		centers[c] = make([]string, centerTerms)
		for i := range centers[c] {
			centers[c][i] = fmt.Sprintf("t%03d", rng.IntN(600))
		}
	}
	profs := make([]*profile.Profile, n)
	for u := range profs {
		c := u % nclusters
		terms := make(map[string]float64, centerTerms+2)
		for _, tm := range centers[c] {
			terms[tm] = 0.7 + 0.6*rng.Float64()
		}
		terms[fmt.Sprintf("t%03d", rng.IntN(600))] += 0.4
		scale := 1.0
		if scaleHalf && u%2 == 1 {
			scale = 8 // activity outlier: gated out at tolerance 0.5
		}
		for tm := range terms {
			terms[tm] *= scale
		}
		p := profile.NewProfile(fmt.Sprintf("u%05d", u))
		if err := p.Observe(profile.Evidence{
			Category: "hot", Terms: terms, Behaviour: profile.BehaviourBuy,
		}); err != nil {
			t.Fatal(err)
		}
		profs[u] = p
	}
	return profs
}

func annEngine(t testing.TB, profs []*profile.Profile, opts ...Option) *Engine {
	t.Helper()
	e := NewEngine(catalog.New(), opts...)
	if err := e.SetProfiles(profs); err != nil {
		t.Fatal(err)
	}
	return e
}

// neighborIDs projects a neighbour list to its id sequence.
func neighborIDs(nbs []similarity.Neighbor) []string {
	ids := make([]string, len(nbs))
	for i, nb := range nbs {
		ids[i] = nb.UserID
	}
	return ids
}

// TestLSHRecallAtTen: mean recall@10 of the LSH path against the exact
// ranking on the same engine must be at least 0.95. The community is big
// enough to force adaptive rehashes well past annMinBits, so recall is
// measured against real bucket depth, not the easy small-table case.
func TestLSHRecallAtTen(t *testing.T) {
	profs := annCommunity(t, 6000, 48, 17, false)
	e := annEngine(t, profs, WithNeighborSearch(SearchLSH))

	// The shortlist must actually engage, or recall is trivially 1.
	snap := e.Snapshot()
	st := snap.stored(profs[0].UserID)
	q := e.index.shortlist("hot", st.sum.Dense)
	if q == nil {
		t.Fatal("LSH shortlist did not engage on a 6000-consumer category")
	}
	shortlisted := 0
	for range q.seq() {
		shortlisted++
	}
	q.release()
	if shortlisted == 0 || shortlisted >= len(profs) {
		t.Fatalf("shortlist covers %d of %d candidates; want a strict, non-empty subset", shortlisted, len(profs))
	}

	rng := rand.New(rand.NewPCG(3, 3))
	var recall float64
	queries := 64
	for i := 0; i < queries; i++ {
		u := profs[rng.IntN(len(profs))].UserID
		exact, err := e.Neighbors(u, "hot", SearchExact)
		if err != nil {
			t.Fatal(err)
		}
		lsh, err := e.Neighbors(u, "hot", SearchLSH)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 {
			t.Fatalf("no exact neighbours for %s", u)
		}
		got := make(map[string]bool, len(lsh))
		for _, nb := range lsh {
			got[nb.UserID] = true
		}
		hit := 0
		for _, nb := range exact {
			if got[nb.UserID] {
				hit++
			}
		}
		recall += float64(hit) / float64(len(exact))
	}
	recall /= float64(queries)
	if recall < 0.95 {
		t.Fatalf("LSH recall@10 = %.3f, want >= 0.95 (shortlist %d of %d)", recall, shortlisted, len(profs))
	}
}

// TestANNGateEquivalence: the Fig 4.5 discard gate must behave identically
// on the shortlist path — an activity outlier the gate discards on the
// exact path can never surface through an LSH bucket, and for a community
// with planted outliers the two paths return the same ranked neighbours.
func TestANNGateEquivalence(t *testing.T) {
	profs := annCommunity(t, 3000, 24, 29, true)
	e := annEngine(t, profs, WithNeighborSearch(SearchLSH), WithTolerance(0.5))

	snap := e.Snapshot()
	rng := rand.New(rand.NewPCG(11, 11))
	for i := 0; i < 32; i++ {
		u := profs[rng.IntN(len(profs))].UserID
		exact, err := e.Neighbors(u, "hot", SearchExact)
		if err != nil {
			t.Fatal(err)
		}
		lsh, err := e.Neighbors(u, "hot", SearchLSH)
		if err != nil {
			t.Fatal(err)
		}
		tx := snap.stored(u).sum.Prefs["hot"]
		for _, nb := range lsh {
			ty := snap.stored(nb.UserID).sum.Prefs["hot"]
			if similarity.GateDiscards(tx, ty, 0.5) {
				t.Fatalf("LSH path returned gated pair %s/%s (Tx=%.2f Ty=%.2f tol=0.5)", u, nb.UserID, tx, ty)
			}
		}
		if len(exact) != len(lsh) {
			t.Fatalf("user %s: exact returned %d neighbours, LSH %d", u, len(exact), len(lsh))
		}
		for j := range exact {
			if exact[j].UserID != lsh[j].UserID || math.Abs(exact[j].Score-lsh[j].Score) > 1e-9 {
				t.Fatalf("user %s rank %d: exact %+v vs LSH %+v", u, j, exact[j], lsh[j])
			}
		}
	}
}

// TestANNOffMatchesExact: with ANN off (the default) nothing changes, and
// even on an LSH engine a category below the shortlist floor falls back to
// the exact scan — both engines answer recommendation queries identically
// on the soak universe, whose categories are all far below annMinShortlist.
func TestANNOffMatchesExact(t *testing.T) {
	u, profiles := soakUniverse(t)
	exact := loadEngine(u, profiles)
	lsh := loadEngine(u, profiles, WithNeighborSearch(SearchLSH))
	for _, strategy := range []Strategy{StrategyCF, StrategyHybrid} {
		for _, usr := range u.Users {
			r0, err0 := exact.Recommend(strategy, usr.ID, "", 8)
			r1, err1 := lsh.Recommend(strategy, usr.ID, "", 8)
			if err0 != nil || err1 != nil {
				t.Fatalf("recommend errors: %v / %v", err0, err1)
			}
			if !recsEquivalent(r1, r0) {
				t.Fatalf("%v for %s diverged below the shortlist floor:\nexact: %v\nlsh:   %v", strategy, usr.ID, r0, r1)
			}
		}
	}
}

// TestANNRehashRaceSoak drives concurrent SetProfile traffic through the
// adaptive rehash threshold (annLoad<<annMinBits postings in one category)
// while readers run LSH neighbour searches and recommendations. Run under
// -race (CI does): the point is that rebucketing a live category never
// races a shortlist probe.
func TestANNRehashRaceSoak(t *testing.T) {
	const total = 3000 // crosses the 2048-posting rehash threshold mid-soak
	profs := annCommunity(t, total, 16, 43, false)
	e := annEngine(t, profs[:256], WithNeighborSearch(SearchLSH), WithShards(8))

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := profs[rng.IntN(256)].UserID
				if _, err := e.Neighbors(u, "hot", SearchLSH); err != nil {
					t.Errorf("neighbors: %v", err)
					return
				}
				if _, err := e.Recommend(StrategyCF, u, "hot", 5); err != nil {
					t.Errorf("recommend: %v", err)
					return
				}
			}
		}(r)
	}
	const nwriters = 8
	for w := 0; w < nwriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 256 + w; i < total; i += nwriters {
				if err := e.SetProfile(profs[i]); err != nil {
					t.Errorf("set profile: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	// Readers get a beat against the final, fully rehashed table.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	readers.Wait()

	// The category must have rehashed past the minimum depth and still
	// answer exactly: every id the exact path ranks is locatable.
	exact, err := e.Neighbors(profs[0].UserID, "hot", SearchExact)
	if err != nil || len(exact) == 0 {
		t.Fatalf("post-soak exact search: %d neighbours, err %v", len(exact), err)
	}
}

// BenchmarkReplicationCatchUpANN is BenchmarkReplicationCatchUp with LSH
// engines on both ends: the follower rebuilds hash tables from replicated
// summaries during snapshot catch-up, so the delta against the exact
// benchmark is the measured price of ANN index rebuild.
func BenchmarkReplicationCatchUpANN(b *testing.B) {
	u, err := workload.Generate(workload.Config{
		Seed: 23, Users: 500, Products: 400, Categories: 8, RelevantPerUser: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	profiles := make([]*profile.Profile, len(u.Users))
	for i, usr := range u.Users {
		if profiles[i], err = u.BuildProfile(usr); err != nil {
			b.Fatal(err)
		}
	}
	owner, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8), WithNeighborSearch(SearchLSH))
	if err != nil {
		b.Fatal(err)
	}
	defer owner.Close()
	if err := owner.SetProfiles(profiles); err != nil {
		b.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := owner.RecordPurchase(user, pid); err != nil {
				b.Fatal(err)
			}
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		follower, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8), WithNeighborSearch(SearchLSH))
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewReplicator(follower, 1, []Peer{LocalPeer{Engine: owner}, nil})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		r.Close()
		follower.Close()
	}
}

// BenchmarkANNNeighbors compares one exact neighbour search against one
// LSH search on a 20k-consumer category — the CI smoke proxy for the full
// BENCH_recommend.json sweep.
func BenchmarkANNNeighbors(b *testing.B) {
	profs := annCommunity(b, 20000, 64, 7, false)
	e := annEngine(b, profs, WithNeighborSearch(SearchLSH))
	targets := make([]string, 16)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range targets {
		targets[i] = profs[rng.IntN(len(profs))].UserID
	}
	for _, mode := range []NeighborSearch{SearchExact, SearchLSH} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Neighbors(targets[i%len(targets)], "hot", mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
