package recommend

import (
	"errors"
	"time"

	"agentrec/internal/kvstore"
)

// This file is the engine's automatic journal compaction policy. The
// durability layer (persist.go) journals every mutation append-only, so a
// long-lived community WAL accumulates profile overwrites without bound —
// and a replica accumulates them far faster than an owner, because a
// follower journals every applied record into its own WAL *and*
// Persister.SaveShard rewrites whole shards on snapshot catch-up. The
// policy watches the journal-size-to-live-size ratio the Persister
// maintains incrementally (SizeStats) and rewrites the journal down to
// live state when it is exceeded.
//
// The rewrite itself never runs on a write path: policy evaluation is a
// couple of atomic operations, and when it fires the compaction runs in a
// single-flight background goroutine (the Persister's crash-safe Compact —
// for the kvstore implementation a temp-file + atomic-rename swap that
// excludes writers only for the final delta carry-over). See DESIGN.md
// "Compaction".

// CompactionPolicy controls automatic journal compaction, enabled with
// WithAutoCompaction. The zero value disables it (manual
// Engine.CompactState only).
type CompactionPolicy struct {
	// Ratio triggers a compaction when the journal holds at least Ratio
	// times the encoded live state. <= 0 disables automatic compaction;
	// values at or below 1 compact whenever the journal exceeds the live
	// state at all (subject to MinBytes).
	Ratio float64
	// MinBytes is the smallest journal worth compacting; below it the
	// ratio is ignored [DefaultCompactMinBytes].
	MinBytes int64
	// CheckEvery is how many journaled writes elapse between policy
	// evaluations on the append path [DefaultCompactCheckEvery]. Snapshot
	// catch-up rewrites (the follower path, where a single apply can
	// append a whole shard) always evaluate.
	CheckEvery int
}

// Compaction policy defaults. The Follower* values are the
// replication-aware eager variant platform deployments apply when engines
// are replicated: a follower's WAL accumulates overwrites faster than an
// owner's, so it is checked more often and compacted from a smaller size.
const (
	DefaultCompactMinBytes   = 1 << 20 // 1 MiB
	DefaultCompactCheckEvery = 64

	FollowerCompactMinBytes   = 256 << 10 // 256 KiB
	FollowerCompactCheckEvery = 16
)

// FollowerCompactionPolicy returns the eager policy for ratio, the variant
// replicated deployments (platform.Config.ReplicateEngines, platformd
// -buyer-peers) apply to every server's engine.
func FollowerCompactionPolicy(ratio float64) CompactionPolicy {
	return CompactionPolicy{
		Ratio:      ratio,
		MinBytes:   FollowerCompactMinBytes,
		CheckEvery: FollowerCompactCheckEvery,
	}
}

// WithAutoCompaction makes the engine compact its persistence journal
// automatically under p. Only meaningful together with WithPersistence /
// WithPersister; a zero-Ratio policy leaves compaction manual.
func WithAutoCompaction(p CompactionPolicy) Option {
	return func(e *Engine) { e.compactPolicy = p }
}

// noteJournalWrite is called after every journaled mutation commits; every
// CheckEvery-th call it evaluates the policy. The hot-path cost is two
// atomic operations.
func (e *Engine) noteJournalWrite() {
	if e.persist == nil || e.compactPolicy.Ratio <= 0 {
		return
	}
	every := e.compactPolicy.CheckEvery
	if every <= 0 {
		every = DefaultCompactCheckEvery
	}
	if e.compactCheck.Add(1)%uint64(every) != 0 {
		return
	}
	e.checkCompaction()
}

// policyExceeded reports whether js has outgrown the policy. The journal
// must strictly exceed the live state: a freshly compacted journal
// (journal == live) never fires, which is what terminates the background
// re-evaluation loop even for ratios at or below 1.
func (e *Engine) policyExceeded(js JournalStats) bool {
	min := e.compactPolicy.MinBytes
	if min <= 0 {
		min = DefaultCompactMinBytes
	}
	return js.JournalBytes >= min &&
		js.JournalBytes > js.LiveBytes &&
		float64(js.JournalBytes) >= e.compactPolicy.Ratio*float64(js.LiveBytes)
}

// checkCompaction evaluates the policy now and, when the journal has
// outgrown the live state, compacts it in a background goroutine. Single
// flight: a check while a compaction is already running is a no-op, so
// writers never block on (or pile up behind) a rewrite. The goroutine
// re-evaluates after each rewrite, because writes carried over into the
// compacted log during the rewrite can leave it over policy again.
func (e *Engine) checkCompaction() {
	if e.persist == nil || e.compactPolicy.Ratio <= 0 {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	js, err := e.persist.SizeStats()
	if err != nil {
		// Same contract as every other read-path persistence failure: a
		// store closed under us is benign, anything else surfaces sticky —
		// a silently broken SizeStats would silently disable compaction.
		if !errors.Is(err, kvstore.ErrClosed) {
			e.setErr(err)
		}
		e.compacting.Store(false)
		return
	}
	if !e.policyExceeded(js) {
		e.compacting.Store(false)
		return
	}
	// The gate orders this Add against Close's Wait (a WaitGroup forbids
	// Add-from-zero concurrent with Wait): once Close has run, no new
	// background compaction may start.
	e.compactGate.Lock()
	if e.compactClosed {
		e.compactGate.Unlock()
		e.compacting.Store(false)
		return
	}
	e.compactWG.Add(1)
	e.compactGate.Unlock()
	go func() {
		defer e.compactWG.Done()
		defer e.compacting.Store(false)
		for {
			if err := e.CompactState(); err != nil {
				// A compaction racing Close loses benignly; anything else
				// is a real durability problem and must surface.
				if !errors.Is(err, kvstore.ErrClosed) {
					e.setErr(err)
				}
				return
			}
			js, err := e.persist.SizeStats()
			if err != nil {
				if !errors.Is(err, kvstore.ErrClosed) {
					e.setErr(err)
				}
				return
			}
			if !e.policyExceeded(js) {
				return
			}
		}
	}()
}

// fillJournalStats populates st's journal sizing and compaction fields.
// Errors other than a concurrently closed store surface as the engine's
// sticky error, like any other read-path persistence failure.
func (e *Engine) fillJournalStats(st *Stats) {
	st.Compactions = e.compactions.Load()
	st.LastCompaction = time.Duration(e.compactNanos.Load())
	if e.persist == nil {
		return
	}
	js, err := e.persist.SizeStats()
	if err != nil {
		if !errors.Is(err, kvstore.ErrClosed) {
			e.setErr(err)
		}
		return
	}
	st.JournalBytes, st.LiveBytes = js.JournalBytes, js.LiveBytes
}
