package recommend

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"agentrec/internal/kvstore"
	"agentrec/internal/profile"
	"agentrec/internal/workload"
)

// Replication tests: a cluster of engines with per-shard ownership,
// owner-routed writes, and journal-tail replication must converge every
// replica to the owner's state — answer-identical through communityEqual,
// and byte-identical at the durable layer through walSnapshot.

// replCluster is n in-process engines wired exactly like
// platform.Config{ReplicateEngines: true}: shard s is owned by engine
// s%n, writes go through routers, every engine tails the others.
type replCluster struct {
	engines []*Engine
	routers []*Router
	repls   []*Replicator
}

func newReplCluster(t *testing.T, u *workload.Universe, n int, optsFor func(i int) []Option) *replCluster {
	t.Helper()
	c := &replCluster{}
	for i := 0; i < n; i++ {
		opts := append([]Option{WithJournalFeed(0), WithNeighbors(8), WithShards(8)}, optsFor(i)...)
		e, err := Open(u.Catalog, opts...)
		if err != nil {
			t.Fatal(err)
		}
		c.engines = append(c.engines, e)
	}
	writers := make([]Writer, n)
	peers := make([]Peer, n)
	for i, e := range c.engines {
		writers[i] = e
		peers[i] = LocalPeer{Engine: e}
	}
	for i, e := range c.engines {
		router, err := NewRouter(e, i, writers)
		if err != nil {
			t.Fatal(err)
		}
		c.routers = append(c.routers, router)
		r, err := NewReplicator(e, i, peers)
		if err != nil {
			t.Fatal(err)
		}
		c.repls = append(c.repls, r)
	}
	t.Cleanup(func() { c.close(t) })
	return c
}

func (c *replCluster) close(t *testing.T) {
	for _, r := range c.repls {
		r.Close()
	}
	for _, e := range c.engines {
		e.Close()
	}
}

// seed installs the universe through server 0's router, exactly as a
// seeded multi-server platform would.
func (c *replCluster) seed(t *testing.T, u *workload.Universe, profiles []*profile.Profile) {
	t.Helper()
	if err := c.routers[0].SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := c.routers[0].RecordPurchase(user, pid); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// sync runs one deterministic catch-up pass on every replicator.
func (c *replCluster) sync(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range c.repls {
		if err := r.Sync(ctx); err != nil {
			t.Fatalf("replicator %d: %v", i, err)
		}
	}
}

// walSnapshot reopens the community WAL under dir and serializes its live
// state in the kvstore's canonical sorted order.
func walSnapshot(t *testing.T, dir string) []byte {
	t.Helper()
	store, err := kvstore.Open(filepath.Join(dir, CommunityWAL))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var buf bytes.Buffer
	if err := store.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// compactedWAL compacts dir's community journal and returns the raw log
// file bytes.
func compactedWAL(t *testing.T, dir string) []byte {
	t.Helper()
	path := filepath.Join(dir, CommunityWAL)
	store, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWriteRoutingOwnsShards pins the ownership map: a routed write lands
// on exactly the owner, and before any replication each engine holds only
// the consumers whose shards it owns.
func TestWriteRoutingOwnsShards(t *testing.T) {
	u, profiles := soakUniverse(t)
	c := newReplCluster(t, u, 3, func(int) []Option { return nil })
	if err := c.routers[1].SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for i, e := range c.engines {
		for _, user := range e.Users() {
			if prev, dup := seen[user]; dup {
				t.Fatalf("user %s on engines %d and %d before replication", user, prev, i)
			}
			seen[user] = i
			if owner := OwnerOf(e.ShardOf(user), len(c.engines)); owner != i {
				t.Fatalf("user %s landed on engine %d, owner is %d", user, i, owner)
			}
		}
	}
	if len(seen) != len(profiles) {
		t.Fatalf("routed installs reached %d consumers, want %d", len(seen), len(profiles))
	}
}

// TestFollowerCatchUpIdentical is the acceptance gate: after journal
// catch-up every server answers Recommend byte-identically to a
// single-engine reference over the same community.
func TestFollowerCatchUpIdentical(t *testing.T) {
	u, profiles := soakUniverse(t)
	ref := loadEngine(u, profiles, WithNeighbors(8), WithShards(8))
	c := newReplCluster(t, u, 3, func(int) []Option { return nil })
	c.seed(t, u, profiles)
	c.sync(t)
	for i, e := range c.engines {
		t.Run(fmt.Sprintf("server-%d", i), func(t *testing.T) {
			communityEqual(t, ref, e)
		})
	}
	for i, r := range c.repls {
		st := r.Stats()
		if lag := st.Lag(); lag != 0 {
			t.Fatalf("replicator %d lag = %d after sync, want 0", i, lag)
		}
		if len(st.Shards) == 0 {
			t.Fatalf("replicator %d follows no shards", i)
		}
		for _, sh := range st.Shards {
			if sh.LastError != "" {
				t.Fatalf("replicator %d shard %d: %s", i, sh.Shard, sh.LastError)
			}
		}
	}
}

// TestLiveTailAfterCatchUp verifies the incremental path: once caught up,
// further writes replicate as journal records, not snapshots.
func TestLiveTailAfterCatchUp(t *testing.T) {
	u, profiles := soakUniverse(t)
	c := newReplCluster(t, u, 2, func(int) []Option { return nil })
	if err := c.routers[0].SetProfiles(profiles[:len(profiles)/2]); err != nil {
		t.Fatal(err)
	}
	c.sync(t)
	before := c.repls[1].Stats()

	c.seed(t, u, profiles) // the rest (plus overwrites) and the purchases
	c.sync(t)
	after := c.repls[1].Stats()
	if afterRecords, beforeRecords := sumRecords(after), sumRecords(before); afterRecords <= beforeRecords {
		t.Fatalf("journal records applied did not grow: %d -> %d", beforeRecords, afterRecords)
	}
	if sumSnapshots(after) != sumSnapshots(before) {
		t.Fatalf("live tail fell back to snapshot: %d -> %d catch-ups",
			sumSnapshots(before), sumSnapshots(after))
	}
	ref := loadEngine(u, profiles, WithNeighbors(8), WithShards(8))
	communityEqual(t, ref, c.engines[1])
}

func sumRecords(st ReplicationStats) (n uint64) {
	for _, s := range st.Shards {
		n += s.Records
	}
	return n
}

func sumSnapshots(st ReplicationStats) (n uint64) {
	for _, s := range st.Shards {
		n += s.Snapshots
	}
	return n
}

// TestPrunedTailFallsBackToSnapshot: a feed retaining almost nothing
// forces snapshot catch-up, which must converge all the same.
func TestPrunedTailFallsBackToSnapshot(t *testing.T) {
	u, profiles := soakUniverse(t)
	c := newReplCluster(t, u, 2, func(int) []Option { return []Option{WithJournalFeed(2)} })
	c.seed(t, u, profiles)
	c.sync(t)
	// Far more writes than the 2-record tails retain: re-install every
	// profile one at a time (state-idempotent, so the reference engine
	// below still matches).
	for _, p := range profiles {
		if err := c.routers[0].SetProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	c.sync(t)
	st := c.repls[1].Stats()
	if sumSnapshots(st) == 0 {
		t.Fatal("expected at least one snapshot catch-up with a 2-record tail")
	}
	ref := loadEngine(u, profiles, WithNeighbors(8), WithShards(8))
	communityEqual(t, ref, c.engines[0])
	communityEqual(t, ref, c.engines[1])
}

// TestReplicatedWALByteIdentical is the durable half of the acceptance
// gate: after catch-up, every server's community WAL holds byte-identical
// live state — including under shard spilling, where replicas apply into
// sometimes-spilled shards.
func TestReplicatedWALByteIdentical(t *testing.T) {
	for _, spill := range []bool{false, true} {
		name := "resident"
		if spill {
			name = "spilling"
		}
		t.Run(name, func(t *testing.T) {
			u, profiles := soakUniverse(t)
			dirs := []string{t.TempDir(), t.TempDir()}
			c := newReplCluster(t, u, 2, func(i int) []Option {
				opts := []Option{WithPersistence(dirs[i])}
				if spill {
					opts = append(opts, WithMaxResidentShards(2))
				}
				return opts
			})
			c.seed(t, u, profiles)
			c.sync(t)
			ref := loadEngine(u, profiles, WithNeighbors(8), WithShards(8))
			communityEqual(t, ref, c.engines[0])
			communityEqual(t, ref, c.engines[1])
			for _, e := range c.engines {
				if err := e.Err(); err != nil {
					t.Fatal(err)
				}
			}
			c.close(t)
			snap0, snap1 := walSnapshot(t, dirs[0]), walSnapshot(t, dirs[1])
			if len(snap0) == 0 {
				t.Fatal("empty WAL snapshot")
			}
			if !bytes.Equal(snap0, snap1) {
				t.Fatalf("WAL live states differ: %d vs %d bytes", len(snap0), len(snap1))
			}
			// Stronger than live-state equality: compacting both journals
			// must leave byte-identical log FILES — the sorted (bucket, key)
			// rewrite erases each replica's distinct write history.
			raws := make([][]byte, len(dirs))
			for i, dir := range dirs {
				raws[i] = compactedWAL(t, dir)
			}
			if len(raws[0]) == 0 {
				t.Fatal("empty compacted WAL")
			}
			if !bytes.Equal(raws[0], raws[1]) {
				t.Fatalf("compacted WALs differ: %d vs %d bytes", len(raws[0]), len(raws[1]))
			}
		})
	}
}

// TestFollowerRestartCatchesUp: a restarted follower (fresh cursor, stale
// durable replica) converges again via snapshot catch-up over its existing
// durable state.
func TestFollowerRestartCatchesUp(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	c := newReplCluster(t, u, 2, func(i int) []Option {
		if i == 1 {
			return []Option{WithPersistence(dir)}
		}
		return nil
	})
	if err := c.routers[0].SetProfiles(profiles[:len(profiles)/2]); err != nil {
		t.Fatal(err)
	}
	c.sync(t)

	// Restart the follower: close its engine and replicator, reopen on the
	// same state dir, and replicate with a brand-new cursor.
	c.repls[1].Close()
	if err := c.engines[1].Close(); err != nil {
		t.Fatal(err)
	}
	e1, err := Open(u.Catalog, WithJournalFeed(0), WithNeighbors(8), WithShards(8), WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	c.engines[1] = e1
	r1, err := NewReplicator(e1, 1, []Peer{LocalPeer{Engine: c.engines[0]}, nil})
	if err != nil {
		t.Fatal(err)
	}
	c.repls[1] = r1

	// Writes that arrived after the restart, through a router rebuilt over
	// the live engines, must replicate on top of the stale durable replica.
	router0, err := NewRouter(c.engines[0], 0, []Writer{nil, e1})
	if err != nil {
		t.Fatal(err)
	}
	if err := router0.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := router0.RecordPurchase(user, pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r1.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	ref := loadEngine(u, profiles, WithNeighbors(8), WithShards(8))
	communityEqual(t, ref, e1)
}

// TestReplicatorShardCountMismatch: a follower with a different shard
// count must refuse to apply rather than mis-bin consumers.
func TestReplicatorShardCountMismatch(t *testing.T) {
	u, _ := soakUniverse(t)
	owner, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := Open(u.Catalog, WithJournalFeed(0), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplicator(follower, 1, []Peer{LocalPeer{Engine: owner}, nil})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Sync(ctx); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("Sync with mismatched shard counts = %v, want ErrShardMismatch", err)
	}
}

// TestReplicationSoak hammers the routers from many goroutines while the
// background replicators tail on a tight interval — run under -race in CI
// — then quiesces and checks all servers converge to the same answers.
func TestReplicationSoak(t *testing.T) {
	u, profiles := soakUniverse(t)
	c := newReplCluster(t, u, 3, func(int) []Option { return nil })
	for _, r := range c.repls {
		// Not Start(): the ticker default is too coarse for a short test.
		rr := r
		go func() {
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				rr.Sync(ctx)
				cancel()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	purch := u.Purchases()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 11))
			router := c.routers[w%len(c.routers)]
			for i := 0; i < 200; i++ {
				p := profiles[rng.IntN(len(profiles))]
				if i%3 == 0 {
					if pids := purch[p.UserID]; len(pids) > 0 {
						if err := router.RecordPurchase(p.UserID, pids[rng.IntN(len(pids))]); err != nil {
							t.Error(err)
							return
						}
					}
					continue
				}
				if err := router.SetProfile(p); err != nil {
					t.Error(err)
					return
				}
				// Concurrent reads against the local replica.
				if _, err := c.engines[w%len(c.engines)].Recommend(StrategyAuto, p.UserID, "", 5); err != nil && !errors.Is(err, ErrUnknownUser) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c.sync(t)
	communityEqual(t, c.engines[0], c.engines[1])
	communityEqual(t, c.engines[0], c.engines[2])
}
