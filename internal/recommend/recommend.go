// Package recommend implements the recommendation information generation of
// §4.4 and the filtering techniques §2.3 surveys:
//
//   - CF: collaborative filtering in the paper's form — find consumers whose
//     profiles are similar (Fig 4.5, with the preference-value discard
//     gate), then recommend the merchandise those neighbours acquired.
//   - IF: information filtering — match merchandise characteristic terms
//     against the consumer's own learned profile (Fig 4.4).
//   - Hybrid: a weighted mix of both, the combination §2.3's reference [5]
//     (Good et al.) argues for.
//   - TopSellers: the non-personalized "top overall sellers" baseline §2.3
//     opens with.
//
// The engine also exposes RecommendForQuery, the exact operation of the
// Fig 4.2 workflow: re-rank the merchandise a Mobile Buyer Agent brought
// back from the marketplaces using the similar consumers' preferences.
//
// Cold start (§2.3's known CF limitation) is handled by explicit fallback:
// a consumer with no usable profile gets top sellers, and the result says
// so. Experiment C4 measures the degradation.
package recommend

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"agentrec/internal/catalog"
	"agentrec/internal/profile"
	"agentrec/internal/similarity"
)

// Strategy selects a recommendation technique.
type Strategy int

// Strategies. StrategyAuto picks Hybrid with cold-start fallback.
const (
	StrategyAuto Strategy = iota
	StrategyCF
	StrategyIF
	StrategyHybrid
	StrategyTopSeller
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyCF:
		return "cf"
	case StrategyIF:
		return "if"
	case StrategyHybrid:
		return "hybrid"
	case StrategyTopSeller:
		return "topseller"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Errors reported by the engine.
var (
	ErrUnknownUser     = errors.New("recommend: unknown user")
	ErrUnknownStrategy = errors.New("recommend: unknown strategy")
)

// Rec is one recommended product.
type Rec struct {
	ProductID string
	Score     float64
	Source    string // which technique produced it, e.g. "cf", "if", "topseller-fallback"
}

// Option configures an Engine.
type Option func(*Engine)

// WithNeighbors sets the CF neighbourhood size k (default 10).
func WithNeighbors(k int) Option {
	return func(e *Engine) {
		if k > 0 {
			e.k = k
		}
	}
}

// WithTolerance sets the Fig 4.5 discard tolerance (default 0.5).
func WithTolerance(tol float64) Option {
	return func(e *Engine) { e.tolerance = tol }
}

// WithHybridWeight sets the CF share in the hybrid mix, in [0,1]
// (default 0.6).
func WithHybridWeight(w float64) Option {
	return func(e *Engine) {
		if w >= 0 && w <= 1 {
			e.hybridW = w
		}
	}
}

// WithDiscardGate enables or disables the preference-value discard gate;
// disabling it is the F4.5 ablation (plain cosine neighbours).
func WithDiscardGate(enabled bool) Option {
	return func(e *Engine) { e.gate = enabled }
}

// Engine holds the consumer community's profiles and transaction history
// and answers recommendation requests. Safe for concurrent use.
type Engine struct {
	catalog   *catalog.Catalog
	k         int
	tolerance float64
	hybridW   float64
	gate      bool

	mu        sync.RWMutex
	profiles  map[string]*profile.Profile
	purchases map[string]map[string]bool // user -> product set
	sellCount map[string]int             // product -> total purchases

	ext *history // timestamped purchases for Trending/TiedSales
}

// NewEngine returns an engine over cat.
func NewEngine(cat *catalog.Catalog, opts ...Option) *Engine {
	e := &Engine{
		catalog:   cat,
		k:         10,
		tolerance: 0.5,
		hybridW:   0.6,
		gate:      true,
		profiles:  make(map[string]*profile.Profile),
		purchases: make(map[string]map[string]bool),
		sellCount: make(map[string]int),
		ext:       newHistory(),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// SetProfile installs or replaces a consumer's profile. The engine keeps a
// deep copy; later mutation by the caller has no effect.
func (e *Engine) SetProfile(p *profile.Profile) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.profiles[p.UserID] = p.Clone()
}

// Profile returns a copy of the stored profile for userID.
func (e *Engine) Profile(userID string) (*profile.Profile, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.profiles[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	return p.Clone(), nil
}

// RecordPurchase notes that userID bought productID, feeding both the CF
// history and the top-seller counts. Duplicate records are idempotent per
// user but still bump popularity.
func (e *Engine) RecordPurchase(userID, productID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	set := e.purchases[userID]
	if set == nil {
		set = make(map[string]bool)
		e.purchases[userID] = set
	}
	set[productID] = true
	e.sellCount[productID]++
}

// Users returns the ids of all consumers with a profile, sorted.
func (e *Engine) Users() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.profiles))
	for id := range e.profiles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Recommend answers with up to n products for userID in category using the
// given strategy. category may be empty for cross-category recommendations
// (CF then skips the discard gate's category test by using the consumer's
// top category). StrategyAuto uses Hybrid and falls back to top sellers for
// cold-start consumers.
func (e *Engine) Recommend(strategy Strategy, userID, category string, n int) ([]Rec, error) {
	switch strategy {
	case StrategyCF:
		return e.cf(userID, category, n)
	case StrategyIF:
		return e.ifilter(userID, category, n)
	case StrategyHybrid:
		return e.hybrid(userID, category, n)
	case StrategyTopSeller:
		return e.topSellers(category, n, "topseller"), nil
	case StrategyAuto:
		recs, err := e.hybrid(userID, category, n)
		if err == nil && len(recs) > 0 {
			return recs, nil
		}
		if err != nil && !errors.Is(err, ErrUnknownUser) {
			return nil, err
		}
		return e.topSellers(category, n, "topseller-fallback"), nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownStrategy, strategy)
	}
}

// neighborCategory picks the category the discard gate compares: the
// explicit one, or the consumer's strongest learned category.
func neighborCategory(p *profile.Profile, category string) string {
	if category != "" {
		return category
	}
	if top := p.TopCategories(1); len(top) > 0 {
		return top[0].Term
	}
	return ""
}

// cf is user-based collaborative filtering over profile similarity.
func (e *Engine) cf(userID, category string, n int) ([]Rec, error) {
	e.mu.RLock()
	target, ok := e.profiles[userID]
	if !ok {
		e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	candidates := make([]*profile.Profile, 0, len(e.profiles))
	for _, p := range e.profiles {
		candidates = append(candidates, p)
	}
	own := e.ownedSet(userID)
	e.mu.RUnlock()

	cat := neighborCategory(target, category)
	tol := e.tolerance
	if !e.gate {
		tol = 1 // gate never fires: |Tx-Ty|/max <= 1 always
	}
	neighbors, err := similarity.TopK(target, candidates, cat, tol, e.k)
	if err != nil {
		return nil, err
	}

	scores := make(map[string]float64)
	e.mu.RLock()
	for _, nb := range neighbors {
		for pid := range e.purchases[nb.UserID] {
			if own[pid] {
				continue
			}
			scores[pid] += nb.Score
		}
	}
	e.mu.RUnlock()
	return e.finish(scores, category, n, "cf"), nil
}

// ifilter is content-based information filtering: merchandise terms against
// the consumer's own profile weights.
func (e *Engine) ifilter(userID, category string, n int) ([]Rec, error) {
	e.mu.RLock()
	target, ok := e.profiles[userID]
	if !ok {
		e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	own := e.ownedSet(userID)
	e.mu.RUnlock()

	scores := make(map[string]float64)
	for _, p := range e.catalog.All() {
		if category != "" && p.Category != category {
			continue
		}
		if own[p.ID] {
			continue
		}
		if s := contentScore(target, p); s > 0 {
			scores[p.ID] = s
		}
	}
	return e.finish(scores, category, n, "if"), nil
}

// contentScore is the dot product of the product's terms with the profile's
// weights for the product's category and sub-category.
func contentScore(prof *profile.Profile, p *catalog.Product) float64 {
	cat := prof.Categories[p.Category]
	if cat == nil {
		return 0
	}
	var s float64
	for t, w := range p.Terms {
		s += w * cat.Terms[t]
	}
	if p.SubCategory != "" && cat.Subs != nil {
		if sub := cat.Subs[p.SubCategory]; sub != nil {
			for t, w := range p.Terms {
				s += w * sub.Terms[t]
			}
		}
	}
	return s
}

// hybrid mixes normalized CF and IF scores with weight hybridW.
func (e *Engine) hybrid(userID, category string, n int) ([]Rec, error) {
	cfRecs, err := e.cf(userID, category, -1)
	if err != nil {
		return nil, err
	}
	ifRecs, err := e.ifilter(userID, category, -1)
	if err != nil {
		return nil, err
	}
	scores := make(map[string]float64, len(cfRecs)+len(ifRecs))
	for _, r := range normalize(cfRecs) {
		scores[r.ProductID] += e.hybridW * r.Score
	}
	for _, r := range normalize(ifRecs) {
		scores[r.ProductID] += (1 - e.hybridW) * r.Score
	}
	return e.finish(scores, category, n, "hybrid"), nil
}

// topSellers is the popularity baseline; own purchases are not excluded
// because it is also the anonymous fallback.
func (e *Engine) topSellers(category string, n int, source string) []Rec {
	e.mu.RLock()
	defer e.mu.RUnlock()
	scores := make(map[string]float64, len(e.sellCount))
	for pid, count := range e.sellCount {
		if category != "" {
			p, err := e.catalog.Get(pid)
			if err != nil || p.Category != category {
				continue
			}
		}
		scores[pid] = float64(count)
	}
	return rank(scores, n, source)
}

// ownedSet snapshots a user's purchases; caller holds e.mu.
func (e *Engine) ownedSet(userID string) map[string]bool {
	own := make(map[string]bool, len(e.purchases[userID]))
	for pid := range e.purchases[userID] {
		own[pid] = true
	}
	return own
}

// finish ranks a score map into recommendations.
func (e *Engine) finish(scores map[string]float64, category string, n int, source string) []Rec {
	return rank(scores, n, source)
}

// rank orders scores descending (ties by id) and truncates to n (n < 0
// means all).
func rank(scores map[string]float64, n int, source string) []Rec {
	out := make([]Rec, 0, len(scores))
	for pid, s := range scores {
		if s > 0 {
			out = append(out, Rec{ProductID: pid, Score: s, Source: source})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ProductID < out[j].ProductID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// normalize scales scores to [0,1] by the max.
func normalize(recs []Rec) []Rec {
	var max float64
	for _, r := range recs {
		if r.Score > max {
			max = r.Score
		}
	}
	if max == 0 {
		return recs
	}
	out := make([]Rec, len(recs))
	for i, r := range recs {
		r.Score /= max
		out[i] = r
	}
	return out
}

// RecommendForQuery performs the Fig 4.2 step: given the merchandise
// matches a Mobile Buyer Agent brought back, re-rank them for the consumer
// by combining the marketplace relevance score with the consumer community's
// preferences (neighbour ownership) and the consumer's own profile. Products
// the consumer already owns sink to the bottom rather than disappearing —
// the buyer still asked for them.
func (e *Engine) RecommendForQuery(userID string, matches []catalog.Match, n int) ([]Rec, error) {
	e.mu.RLock()
	target, ok := e.profiles[userID]
	var neighbors []similarity.Neighbor
	if ok {
		candidates := make([]*profile.Profile, 0, len(e.profiles))
		for _, p := range e.profiles {
			candidates = append(candidates, p)
		}
		e.mu.RUnlock()
		cat := ""
		if len(matches) > 0 {
			cat = matches[0].Product.Category
		}
		var err error
		neighbors, err = similarity.TopK(target, candidates, neighborCategory(target, cat), e.tolerance, e.k)
		if err != nil {
			return nil, err
		}
		e.mu.RLock()
	}
	defer e.mu.RUnlock()

	nbOwn := make(map[string]float64)
	for _, nb := range neighbors {
		for pid := range e.purchases[nb.UserID] {
			nbOwn[pid] += nb.Score
		}
	}
	var maxRel, maxNb, maxContent float64
	contents := make([]float64, len(matches))
	for i, m := range matches {
		if m.Score > maxRel {
			maxRel = m.Score
		}
		if nbOwn[m.Product.ID] > maxNb {
			maxNb = nbOwn[m.Product.ID]
		}
		if ok {
			contents[i] = contentScore(target, m.Product)
			if contents[i] > maxContent {
				maxContent = contents[i]
			}
		}
	}
	norm := func(v, max float64) float64 {
		if max == 0 {
			return 0
		}
		return v / max
	}
	out := make([]Rec, 0, len(matches))
	for i, m := range matches {
		score := 0.4*norm(m.Score, maxRel) +
			0.35*norm(nbOwn[m.Product.ID], maxNb) +
			0.25*norm(contents[i], maxContent)
		if ok && e.purchases[userID][m.Product.ID] {
			score *= 0.1 // owned: sink, don't hide
		}
		out = append(out, Rec{ProductID: m.Product.ID, Score: score, Source: "query-rerank"})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ProductID < out[j].ProductID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}
