// Package recommend implements the recommendation information generation of
// §4.4 and the filtering techniques §2.3 surveys:
//
//   - CF: collaborative filtering in the paper's form — find consumers whose
//     profiles are similar (Fig 4.5, with the preference-value discard
//     gate), then recommend the merchandise those neighbours acquired.
//   - IF: information filtering — match merchandise characteristic terms
//     against the consumer's own learned profile (Fig 4.4).
//   - Hybrid: a weighted mix of both, the combination §2.3's reference [5]
//     (Good et al.) argues for.
//   - TopSellers: the non-personalized "top overall sellers" baseline §2.3
//     opens with.
//
// The engine also exposes RecommendForQuery, the exact operation of the
// Fig 4.2 workflow: re-rank the merchandise a Mobile Buyer Agent brought
// back from the marketplaces using the similar consumers' preferences.
//
// Cold start (§2.3's known CF limitation) is handled by explicit fallback:
// a consumer with no usable profile gets top sellers, and the result says
// so. Experiment C4 measures the degradation.
//
// # Scaling architecture
//
// The engine is built to serve a large community concurrently:
//
//   - Community state is partitioned into user-keyed shards (fnv-1a on the
//     consumer id), each with its own lock, so writes contend per shard.
//   - Every SetProfile maintains an incremental per-category candidate
//     index (posting lists of profile summaries), so CF's neighbour search
//     iterates only the consumers active in the target category — an exact
//     restriction under the Fig 4.5 gate, not an approximation.
//   - Recommendation requests run lock-free against immutable Snapshots
//     assembled from per-shard copy-on-read views; sell counts live in
//     atomic per-shard counters merged on read.
//   - With persistence (Open + WithPersistence) every mutation is
//     journaled to a WAL-backed store before it mutates memory
//     (journal-first: an acknowledged write is durable), state is
//     recovered on construction, and cold shards can spill out of memory
//     entirely (persist.go).
//   - With a journal feed (WithJournalFeed) the engine supports per-shard
//     ownership across servers: writes route to a shard's owning server
//     (Router), followers tail the owner's journal and converge to
//     identical state (Replicator; replicate.go).
//
// # Invariants
//
//   - Recommendation results are identical for any shard count, with or
//     without spilling, on owner or caught-up follower.
//   - Lock order: shard → index bucket, shard → residency bookkeeping
//     (resMu), shard → journal feed. No path acquires these in reverse,
//     and no path holds two shard locks at once.
//   - A shard's writes are totally ordered by its lock; the journal, the
//     feed, and memory all observe that one order. Sell counts are
//     attributed to the buyer's shard durably, so one shard's journal
//     fully determines its replica; the served totals are the sum over
//     shards.
//   - Stored profiles and index postings are immutable in place; every
//     install replaces whole entries.
//
// See DESIGN.md for the full architecture map.
package recommend

import (
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/ops"
	"agentrec/internal/profile"
	"agentrec/internal/similarity"
)

// Strategy selects a recommendation technique.
type Strategy int

// Strategies. StrategyAuto picks Hybrid with cold-start fallback.
const (
	StrategyAuto Strategy = iota
	StrategyCF
	StrategyIF
	StrategyHybrid
	StrategyTopSeller
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyCF:
		return "cf"
	case StrategyIF:
		return "if"
	case StrategyHybrid:
		return "hybrid"
	case StrategyTopSeller:
		return "topseller"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Errors reported by the engine.
var (
	ErrUnknownUser     = errors.New("recommend: unknown user")
	ErrUnknownStrategy = errors.New("recommend: unknown strategy")
)

// Rec is one recommended product.
type Rec struct {
	ProductID string
	Score     float64
	Source    string // which technique produced it, e.g. "cf", "if", "topseller-fallback"
}

// Option configures an Engine.
type Option func(*Engine)

// WithNeighbors sets the CF neighbourhood size k (default 10).
func WithNeighbors(k int) Option {
	return func(e *Engine) {
		if k > 0 {
			e.k = k
		}
	}
}

// WithTolerance sets the Fig 4.5 discard tolerance (default 0.5).
func WithTolerance(tol float64) Option {
	return func(e *Engine) { e.tolerance = tol }
}

// WithHybridWeight sets the CF share in the hybrid mix, in [0,1]
// (default 0.6).
func WithHybridWeight(w float64) Option {
	return func(e *Engine) {
		if w >= 0 && w <= 1 {
			e.hybridW = w
		}
	}
}

// WithDiscardGate enables or disables the preference-value discard gate;
// disabling it is the F4.5 ablation (plain cosine neighbours).
func WithDiscardGate(enabled bool) Option {
	return func(e *Engine) { e.gate = enabled }
}

// WithShards sets the number of user-keyed state shards (default
// DefaultShards). More shards mean less write contention; recommendations
// are identical for any shard count.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.nshards = n
		}
	}
}

// NeighborSearch selects how CF's neighbour search enumerates candidates.
type NeighborSearch int

// Neighbor search modes. SearchExact scans the exact per-category posting
// list (or the whole community when the gate is ablated) — the F4.5
// experiment path and the online recall baseline. SearchLSH shortlists
// candidates through the random-hyperplane LSH index and re-ranks the
// shortlist with the same exact scorer; approximate in who gets scored,
// exact in how.
const (
	SearchExact NeighborSearch = iota
	SearchLSH
)

// String returns the mode name.
func (m NeighborSearch) String() string {
	switch m {
	case SearchExact:
		return "exact"
	case SearchLSH:
		return "lsh"
	default:
		return fmt.Sprintf("search(%d)", int(m))
	}
}

// WithNeighborSearch sets the engine's default neighbour search mode
// (default SearchExact). With SearchLSH the engine maintains per-category
// LSH buckets incrementally inside the same critical sections as the
// candidate index, and queries over large categories score only a
// shortlisted fraction of the community; small categories and gate-ablated
// queries still scan exactly. Engine.Neighbors overrides the mode per
// call, which is how recall against the exact baseline is measured online.
func WithNeighborSearch(m NeighborSearch) Option {
	return func(e *Engine) { e.search = m }
}

// WithANNProbes sets the multi-probe width of the LSH shortlist: how many
// buckets per hash table a query inspects (default
// similarity.DefaultProbes). More probes raise recall and shortlist size;
// only meaningful with WithNeighborSearch(SearchLSH).
func WithANNProbes(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.annProbes = n
		}
	}
}

// Engine holds the consumer community's profiles and transaction history
// and answers recommendation requests. Safe for concurrent use: state is
// partitioned into user-keyed shards and reads run against immutable
// snapshots (see Snapshot). With WithPersistence (construct via Open) every
// mutation is write-through journaled to a WAL-backed store, the community
// is recovered on construction, and cold shards can spill out of memory
// (WithMaxResidentShards) with transparent fault-in; see persist.go.
type Engine struct {
	catalog   *catalog.Catalog
	k         int
	tolerance float64
	hybridW   float64
	gate      bool
	nshards   int
	search    NeighborSearch // default neighbour search mode
	annProbes int            // multi-probe width when search is SearchLSH

	shards []*shard       // community state, fnv(userID) % nshards
	sells  []*sellShard   // sell counts, fnv(productID) % nshards
	index  *categoryIndex // per-category candidate posting lists

	ext *history // timestamped purchases for Trending/TiedSales

	// Durability (nil/zero for a memory-only engine; see persist.go).
	persist     Persister
	stateDir    string
	maxResident int
	clock       atomic.Uint64 // logical LRU clock for shard spilling
	resMu       sync.Mutex    // guards residentN and stickyErr
	residentN   int
	stickyErr   error

	// Automatic journal compaction (zero Ratio = manual only; compact.go).
	compactPolicy CompactionPolicy
	compactCheck  atomic.Uint64 // journaled writes, for CheckEvery sampling
	compacting    atomic.Bool   // single-flight guard for the background rewrite
	compactGate   sync.Mutex    // orders compactWG.Add against Close's Wait
	compactClosed bool          // Close ran: no new background compactions
	compactWG     sync.WaitGroup
	compactions   atomic.Uint64
	compactNanos  atomic.Int64 // duration of the most recent compaction

	// Replication (nil unless WithJournalFeed; see replicate.go).
	feed    *journalFeed
	feedCap int

	// Event plane (nil unless WithEventBus; see events.go).
	events      *ops.Bus
	eventServer int
	deltaMu     sync.Mutex          // guards lastTop
	lastTop     map[string][]string // served top-N per (user, category, strategy), for delta detection
}

// NewEngine returns an engine over cat. Persistence options are rejected
// here because recovery can fail: build durable engines with Open.
func NewEngine(cat *catalog.Catalog, opts ...Option) *Engine {
	e, err := Open(cat, opts...)
	if err != nil {
		panic(fmt.Sprintf("recommend: NewEngine with persistence options: %v (use Open)", err))
	}
	return e
}

// Open is NewEngine with error reporting: required for engines built with
// WithPersistence / WithPersister, whose recovery replay can fail. The
// caller should Close a persistent engine when done with it.
func Open(cat *catalog.Catalog, opts ...Option) (*Engine, error) {
	e := &Engine{
		catalog:   cat,
		k:         10,
		tolerance: 0.5,
		hybridW:   0.6,
		gate:      true,
		nshards:   DefaultShards,
		annProbes: similarity.DefaultProbes,
	}
	for _, opt := range opts {
		opt(e)
	}
	e.shards = make([]*shard, e.nshards)
	e.sells = make([]*sellShard, e.nshards)
	for i := 0; i < e.nshards; i++ {
		e.shards[i] = newShard(i)
		e.sells[i] = newSellShard(i)
	}
	e.index = newCategoryIndex(e.nshards)
	if e.search == SearchLSH {
		// Armed before recovery and replication ever install a posting, so
		// warm restart and snapshot catch-up rebuild the hashes from the
		// replicated summaries through the ordinary install path.
		e.index.ann = &annState{
			hasher: similarity.NewHasher(similarity.DefaultTables, annSeed),
			probes: e.annProbes,
		}
	}
	e.ext = newHistory(e.nshards)
	if e.feedCap > 0 {
		feed, err := newJournalFeed(e.nshards, e.feedCap)
		if err != nil {
			return nil, err
		}
		e.feed = feed
	}
	if e.persist == nil && e.stateDir != "" {
		p, err := OpenPersister(e.stateDir)
		if err != nil {
			return nil, err
		}
		e.persist = p
	}
	if e.persist != nil {
		if err := e.recover(); err != nil {
			e.persist.Close()
			return nil, err
		}
	}
	return e, nil
}

func (e *Engine) shardFor(userID string) *shard {
	return e.shards[fnv32a(userID)%uint32(len(e.shards))]
}

// ShardOf reports which shard userID's community state lives in. Write
// routing across replicated servers keys ownership off this.
func (e *Engine) ShardOf(userID string) int {
	return int(fnv32a(userID) % uint32(e.nshards))
}

// Shards reports the engine's shard count. Replication requires every
// server to agree on it.
func (e *Engine) Shards() int { return e.nshards }

func (e *Engine) sellFor(productID string) *sellShard {
	return e.sells[fnv32a(productID)%uint32(len(e.sells))]
}

// SetProfile installs or replaces a consumer's profile. The engine keeps a
// deep copy; later mutation by the caller has no effect. The consumer's
// category postings in the candidate index are refreshed inside the same
// shard critical section, so index updates for one consumer are totally
// ordered by the shard lock and always match the shard's final state.
// (Lock order is shard -> index bucket; no path acquires them in reverse.)
//
// With persistence the profile is journaled (durably) before the in-memory
// install; the error is always nil for memory-only engines.
func (e *Engine) SetProfile(p *profile.Profile) error {
	return e.installShardProfiles(e.shardFor(p.UserID), []*profile.Profile{p.Clone()})
}

// SetProfiles bulk-installs profiles: one shard lock acquisition, one
// durable batch, and one index pass per touched shard, instead of one each
// per profile. Equivalent to calling SetProfile for each element in order
// (later duplicates win). This is the SeedCommunity path: installing a
// warm community one profile at a time pays nshards times the locking and
// journaling it needs to.
func (e *Engine) SetProfiles(ps []*profile.Profile) error {
	byShard := make([][]*profile.Profile, e.nshards)
	for _, p := range ps {
		i := e.ShardOf(p.UserID)
		byShard[i] = append(byShard[i], p.Clone())
	}
	for i, group := range byShard {
		if len(group) == 0 {
			continue
		}
		if err := e.installShardProfiles(e.shards[i], group); err != nil {
			return err
		}
	}
	return nil
}

// installShardProfiles installs profs — already private copies, all
// belonging to sh — journal-first, then into the shard map, candidate
// index, and journal feed, all inside the shard critical section. Shared by
// SetProfile, SetProfiles, and the replication apply path.
func (e *Engine) installShardProfiles(sh *shard, profs []*profile.Profile) error {
	encoded, err := e.feedEncodeProfiles(profs)
	if err != nil {
		return err
	}
	if err := e.lockResidentW(sh); err != nil {
		return err
	}
	if e.persist != nil {
		if err := e.persist.SaveProfiles(sh.id, profs); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	changes := make([]postingChange, 0, len(profs))
	for _, p := range profs {
		sum := p.Summary()
		var prev *profile.Summary
		if old := sh.profiles[p.UserID]; old != nil {
			prev = old.sum
		}
		sh.profiles[p.UserID] = &stored{prof: p, sum: sum}
		changes = append(changes, postingChange{prev: prev, sum: sum})
	}
	seq := sh.gen.Add(1)
	e.index.updateBatch(changes)
	if e.feed != nil {
		// Bulk installs split into several bounded records, so no single
		// journal record outgrows a network frame when peers tail the feed.
		for _, chunk := range chunkEncoded(encoded, maxFeedRecordBytes) {
			seq = e.feed.emit(sh.id, JournalRecord{Op: OpProfiles, Profiles: chunk})
		}
	}
	sh.mu.Unlock()
	if e.events != nil {
		var payload int
		for _, enc := range encoded {
			payload += len(enc)
		}
		e.publishJournal(sh.id, seq, OpProfiles, len(profs), payload)
	}
	e.maybeEvict(sh)
	e.noteJournalWrite()
	return nil
}

// Profile returns a copy of the stored profile for userID, faulting the
// consumer's shard in when it was spilled.
func (e *Engine) Profile(userID string) (*profile.Profile, error) {
	sh := e.shardFor(userID)
	for {
		sh.mu.RLock()
		if sh.resident.Load() {
			st := sh.profiles[userID]
			sh.mu.RUnlock()
			e.touch(sh)
			if st == nil {
				return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
			}
			return st.prof.Clone(), nil
		}
		sh.mu.RUnlock()
		if err := e.faultIn(sh); err != nil {
			return nil, err
		}
	}
}

// RecordPurchase notes that userID bought productID, feeding both the CF
// history and the top-seller counts. Duplicate records are idempotent per
// user but still bump popularity. With persistence the purchase and the
// product's new sell count attributed to the user's shard are journaled as
// one atomic batch — under the shard lock alone, which serializes the
// shard's attributed totals — before the in-memory update; the error is
// always nil for memory-only engines. The served per-product total is the
// sum of every shard's attribution, bumped after the shard commit.
func (e *Engine) RecordPurchase(userID, productID string) error {
	sh := e.shardFor(userID)
	if err := e.lockResidentW(sh); err != nil {
		return err
	}
	total := sh.sells[productID] + 1
	if e.persist != nil {
		if err := e.persist.SavePurchase(sh.id, userID, productID, total); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	set := sh.purchases[userID]
	if set == nil {
		set = make(map[string]bool)
		sh.purchases[userID] = set
	}
	set[productID] = true
	sh.sells[productID] = total
	seq := sh.gen.Add(1)
	if e.feed != nil {
		seq = e.feed.emit(sh.id, JournalRecord{Op: OpPurchase, UserID: userID, ProductID: productID})
	}
	sh.mu.Unlock()
	e.sellFor(productID).bump(productID)
	e.publishJournal(sh.id, seq, OpPurchase, 1, 0)
	e.maybeEvict(sh)
	e.noteJournalWrite()
	return nil
}

// Users returns the ids of all consumers with a profile, sorted. Resident
// shards are read directly; spilled shards are answered from the
// Persister's key space without faulting them in.
func (e *Engine) Users() []string {
	var out []string
	for _, sh := range e.shards {
		sh.mu.RLock()
		if sh.resident.Load() {
			for id := range sh.profiles {
				out = append(out, id)
			}
			sh.mu.RUnlock()
			continue
		}
		sh.mu.RUnlock()
		ids, err := e.persist.ShardUsers(sh.id)
		if err != nil {
			e.setErr(err)
			continue
		}
		out = append(out, ids...)
	}
	sort.Strings(out)
	return out
}

// Stats reports engine sizing, for observability and tests. JSON tags
// follow the agent-first convention (units in the field name) so the
// struct is self-describing on the wire; EventView converts it to the
// unified ops.EngineSnapshot the event plane publishes.
type Stats struct {
	Shards            int    `json:"shards"`
	ResidentShards    int    `json:"resident_shards"` // < Shards when cold shards are spilled
	Users             int    `json:"users"`
	IndexedCategories int    `json:"indexed_categories"`
	Postings          int    `json:"postings"`
	IndexWrites       uint64 `json:"index_writes"` // posting mutations since construction (catch-up cost gauge)

	// Journal sizing and compaction (all zero without persistence).
	JournalBytes   int64         `json:"journal_bytes"`      // persistence journal size on disk
	LiveBytes      int64         `json:"live_bytes"`         // what the journal would compact down to
	Compactions    uint64        `json:"compactions"`        // CompactState successes (manual + automatic)
	LastCompaction time.Duration `json:"last_compaction_ns"` // duration of the most recent compaction
}

// Stats returns the engine's current sizing. Spilled shards are counted
// through the Persister rather than faulted in.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: e.nshards}
	for _, sh := range e.shards {
		sh.mu.RLock()
		if sh.resident.Load() {
			st.Users += len(sh.profiles)
			st.ResidentShards++
			sh.mu.RUnlock()
			continue
		}
		sh.mu.RUnlock()
		ids, err := e.persist.ShardUsers(sh.id)
		if err != nil {
			e.setErr(err)
			continue
		}
		st.Users += len(ids)
	}
	st.IndexedCategories, st.Postings = e.index.size()
	st.IndexWrites = e.index.writes.Load()
	e.fillJournalStats(&st)
	return st
}

// Recommend answers with up to n products for userID in category using the
// given strategy. category may be empty for cross-category recommendations
// (CF then skips the discard gate's category test by using the consumer's
// top category). StrategyAuto uses Hybrid and falls back to top sellers for
// cold-start consumers.
//
// With WithEventBus, a served top-N that differs from the previous answer
// for the same (user, category, strategy) additionally publishes a
// KindRecDelta event (see events.go); RecommendWith stays delta-free for
// callers issuing exploratory reads against their own snapshots.
func (e *Engine) Recommend(strategy Strategy, userID, category string, n int) ([]Rec, error) {
	if e.events == nil {
		return e.RecommendWith(e.Snapshot(), strategy, userID, category, n)
	}
	start := time.Now()
	recs, err := e.RecommendWith(e.Snapshot(), strategy, userID, category, n)
	if err == nil {
		e.publishRecDelta(strategy, userID, category, recs, time.Since(start))
	}
	return recs, err
}

// RecommendWith is Recommend against an existing Snapshot, letting callers
// issue several recommendations for one consistent community view (the
// Fig 4.2 task completion asks for both a query re-rank and cross-sell).
func (e *Engine) RecommendWith(snap *Snapshot, strategy Strategy, userID, category string, n int) ([]Rec, error) {
	switch strategy {
	case StrategyCF:
		return e.cf(snap, userID, category, n)
	case StrategyIF:
		return e.ifilter(snap, userID, category, n)
	case StrategyHybrid:
		return e.hybrid(snap, userID, category, n)
	case StrategyTopSeller:
		return e.topSellers(category, n, "topseller"), nil
	case StrategyAuto:
		recs, err := e.hybrid(snap, userID, category, n)
		if err == nil && len(recs) > 0 {
			return recs, nil
		}
		if err != nil && !errors.Is(err, ErrUnknownUser) {
			return nil, err
		}
		return e.topSellers(category, n, "topseller-fallback"), nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownStrategy, strategy)
	}
}

// neighborCategory picks the category the discard gate compares: the
// explicit one, or the consumer's strongest learned category.
func neighborCategory(p *profile.Profile, category string) string {
	if category != "" {
		return category
	}
	if top := p.TopCategories(1); len(top) > 0 {
		return top[0].Term
	}
	return ""
}

// neighbors runs the streaming neighbour search for the target entry in
// the engine's configured search mode.
func (e *Engine) neighbors(snap *Snapshot, st *stored, cat string, tol float64) ([]similarity.Neighbor, error) {
	return e.neighborsMode(snap, st, cat, tol, e.search)
}

// neighborsMode is neighbors with the search mode explicit. When the
// discard gate is live (tolerance below 1) and the target has evidence in
// the category, the per-category posting list is an exact substitute for
// the whole community — every consumer missing from it would be gated out
// anyway (Ty = 0 against Tx > 0). In SearchLSH mode a sufficiently large
// category is further shortlisted through the LSH buckets before the exact
// re-rank; everything the gate or scorer sees is identical, only the
// candidate enumeration narrows. Otherwise fall back to scanning the
// snapshot.
func (e *Engine) neighborsMode(snap *Snapshot, st *stored, cat string, tol float64, mode NeighborSearch) ([]similarity.Neighbor, error) {
	tx := st.sum.Prefs[cat]
	if cat == "" || tol >= 1 || tx <= 0 {
		return similarity.TopKStream(st.prof.UserID, st.sum.Vec, tx, tol, snap.candidates(cat), e.k)
	}
	if mode == SearchLSH {
		if q := e.index.shortlist(cat, st.sum.Dense); q != nil {
			defer q.release()
			return similarity.TopKStream(st.prof.UserID, st.sum.Vec, tx, tol, e.reconciled(snap, cat, q.seq()), e.k)
		}
	}
	return similarity.TopKStream(st.prof.UserID, st.sum.Vec, tx, tol, e.indexCandidates(snap, cat), e.k)
}

// Neighbors exposes the CF neighbour search directly: the k most similar
// consumers to userID with respect to category (or their top category when
// empty), in the given search mode regardless of the engine default. This
// is the online recall surface — comparing SearchLSH against SearchExact
// on the same engine measures shortlist recall with zero test scaffolding —
// and what cmd/recbench's neighbour benchmarks drive.
func (e *Engine) Neighbors(userID, category string, mode NeighborSearch) ([]similarity.Neighbor, error) {
	snap := e.Snapshot()
	st := snap.stored(userID)
	if st == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	cat := neighborCategory(st.prof, category)
	tol := e.tolerance
	if !e.gate {
		tol = 1
	}
	return e.neighborsMode(snap, st, cat, tol, mode)
}

// indexCandidates streams the category's full posting list reconciled
// against snap.
func (e *Engine) indexCandidates(snap *Snapshot, cat string) iter.Seq[similarity.Candidate] {
	return e.reconciled(snap, cat, e.index.candidates(cat))
}

// reconciled streams index-derived candidates (the full posting list or an
// LSH shortlist of it) reconciled against snap: the index only enumerates
// candidates; vectors and preference values are taken from the snapshot's
// stored summaries, so scoring is always consistent with the view the rest
// of the request sees even while SetProfile runs concurrently. Consumers
// the snapshot does not know (installed after it was taken) are skipped.
// The remaining skew is enumeration-only and transient, in both
// directions: a consumer whose category activity was first indexed after
// the snapshot was assembled may be missed, and one whose posting was
// concurrently removed is dropped even though the snapshot still holds
// them. A candidate is never mis-scored; on a quiet community the posting
// list matches the snapshot exactly (TestIndexedNeighborsMatchFullScan).
//
// Under shard spilling a candidate may live in a shard the snapshot never
// materialized (it was spilled when the snapshot was taken). Its posting
// is then used as-is rather than faulting the shard in: a spilled shard
// accepts no writes, so its postings are exactly its durable state — the
// same values a fault-in would reload.
func (e *Engine) reconciled(snap *Snapshot, cat string, inner iter.Seq[similarity.Candidate]) iter.Seq[similarity.Candidate] {
	return func(yield func(similarity.Candidate) bool) {
		for c := range inner {
			st, known := snap.peek(c.UserID)
			if !known {
				// Shard spilled at snapshot time: the posting is canonical.
				if c.Ty > 0 && !yield(c) {
					return
				}
				continue
			}
			if st == nil {
				continue
			}
			ty := st.sum.Prefs[cat]
			if ty <= 0 {
				continue
			}
			if !yield(similarity.Candidate{
				UserID: c.UserID, Vec: st.sum.Vec, Ty: ty,
				Norm: st.sum.Norm, Dense: st.sum.Dense,
			}) {
				return
			}
		}
	}
}

// cf is user-based collaborative filtering over profile similarity.
func (e *Engine) cf(snap *Snapshot, userID, category string, n int) ([]Rec, error) {
	st := snap.stored(userID)
	if st == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	cat := neighborCategory(st.prof, category)
	tol := e.tolerance
	if !e.gate {
		tol = 1 // gate never fires: |Tx-Ty|/max <= 1 always
	}
	neighbors, err := e.neighbors(snap, st, cat, tol)
	if err != nil {
		return nil, err
	}

	own := snap.Purchases(userID)
	scores := make(map[string]float64)
	for _, nb := range neighbors {
		for pid := range snap.Purchases(nb.UserID) {
			if own[pid] {
				continue
			}
			scores[pid] += nb.Score
		}
	}
	return rank(scores, n, "cf"), nil
}

// ifilter is content-based information filtering: merchandise terms against
// the consumer's own profile weights.
func (e *Engine) ifilter(snap *Snapshot, userID, category string, n int) ([]Rec, error) {
	st := snap.stored(userID)
	if st == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	own := snap.Purchases(userID)

	scores := make(map[string]float64)
	for _, p := range e.catalog.All() {
		if category != "" && p.Category != category {
			continue
		}
		if own[p.ID] {
			continue
		}
		if s := contentScore(st.prof, p); s > 0 {
			scores[p.ID] = s
		}
	}
	return rank(scores, n, "if"), nil
}

// contentScore is the dot product of the product's terms with the profile's
// weights for the product's category and sub-category.
func contentScore(prof *profile.Profile, p *catalog.Product) float64 {
	cat := prof.Categories[p.Category]
	if cat == nil {
		return 0
	}
	var s float64
	for t, w := range p.Terms {
		s += w * cat.Terms[t]
	}
	if p.SubCategory != "" && cat.Subs != nil {
		if sub := cat.Subs[p.SubCategory]; sub != nil {
			for t, w := range p.Terms {
				s += w * sub.Terms[t]
			}
		}
	}
	return s
}

// hybrid mixes normalized CF and IF scores with weight hybridW, both sides
// computed over the same snapshot.
func (e *Engine) hybrid(snap *Snapshot, userID, category string, n int) ([]Rec, error) {
	cfRecs, err := e.cf(snap, userID, category, -1)
	if err != nil {
		return nil, err
	}
	ifRecs, err := e.ifilter(snap, userID, category, -1)
	if err != nil {
		return nil, err
	}
	scores := make(map[string]float64, len(cfRecs)+len(ifRecs))
	for _, r := range normalize(cfRecs) {
		scores[r.ProductID] += e.hybridW * r.Score
	}
	for _, r := range normalize(ifRecs) {
		scores[r.ProductID] += (1 - e.hybridW) * r.Score
	}
	return rank(scores, n, "hybrid"), nil
}

// topSellers is the popularity baseline; own purchases are not excluded
// because it is also the anonymous fallback. Counts are merged from the
// per-shard atomic counters.
func (e *Engine) topSellers(category string, n int, source string) []Rec {
	scores := make(map[string]float64)
	for _, ss := range e.sells {
		ss.each(func(pid string, count int64) {
			if category != "" {
				p, err := e.catalog.Get(pid)
				if err != nil || p.Category != category {
					return
				}
			}
			scores[pid] = float64(count)
		})
	}
	return rank(scores, n, source)
}

// rank orders scores descending (ties by id) and truncates to n (n < 0
// means all).
func rank(scores map[string]float64, n int, source string) []Rec {
	out := make([]Rec, 0, len(scores))
	for pid, s := range scores {
		if s > 0 {
			out = append(out, Rec{ProductID: pid, Score: s, Source: source})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ProductID < out[j].ProductID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// normalize scales scores to [0,1] by the max.
func normalize(recs []Rec) []Rec {
	var max float64
	for _, r := range recs {
		if r.Score > max {
			max = r.Score
		}
	}
	if max == 0 {
		return recs
	}
	out := make([]Rec, len(recs))
	for i, r := range recs {
		r.Score /= max
		out[i] = r
	}
	return out
}

// RecommendForQuery performs the Fig 4.2 step: given the merchandise
// matches a Mobile Buyer Agent brought back, re-rank them for the consumer
// by combining the marketplace relevance score with the consumer community's
// preferences (neighbour ownership) and the consumer's own profile. Products
// the consumer already owns sink to the bottom rather than disappearing —
// the buyer still asked for them.
func (e *Engine) RecommendForQuery(userID string, matches []catalog.Match, n int) ([]Rec, error) {
	return e.RecommendForQueryWith(e.Snapshot(), userID, matches, n)
}

// RecommendForQueryWith is RecommendForQuery against an existing Snapshot.
func (e *Engine) RecommendForQueryWith(snap *Snapshot, userID string, matches []catalog.Match, n int) ([]Rec, error) {
	st := snap.stored(userID)
	known := st != nil
	var neighbors []similarity.Neighbor
	if known {
		cat := ""
		if len(matches) > 0 {
			cat = matches[0].Product.Category
		}
		var err error
		neighbors, err = e.neighbors(snap, st, neighborCategory(st.prof, cat), e.tolerance)
		if err != nil {
			return nil, err
		}
	}

	nbOwn := make(map[string]float64)
	for _, nb := range neighbors {
		for pid := range snap.Purchases(nb.UserID) {
			nbOwn[pid] += nb.Score
		}
	}
	var maxRel, maxNb, maxContent float64
	contents := make([]float64, len(matches))
	for i, m := range matches {
		if m.Score > maxRel {
			maxRel = m.Score
		}
		if nbOwn[m.Product.ID] > maxNb {
			maxNb = nbOwn[m.Product.ID]
		}
		if known {
			contents[i] = contentScore(st.prof, m.Product)
			if contents[i] > maxContent {
				maxContent = contents[i]
			}
		}
	}
	norm := func(v, max float64) float64 {
		if max == 0 {
			return 0
		}
		return v / max
	}
	owned := snap.Purchases(userID)
	out := make([]Rec, 0, len(matches))
	for i, m := range matches {
		score := 0.4*norm(m.Score, maxRel) +
			0.35*norm(nbOwn[m.Product.ID], maxNb) +
			0.25*norm(contents[i], maxContent)
		if known && owned[m.Product.ID] {
			score *= 0.1 // owned: sink, don't hide
		}
		out = append(out, Rec{ProductID: m.Product.ID, Score: score, Source: "query-rerank"})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ProductID < out[j].ProductID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}
