package recommend

import (
	"sort"
	"sync"
	"time"
)

// This file implements the paper's §5.2 future-work directions 2 and 3:
// "Provide the more kinds of recommendation information such as weekly
// hottest merchandise, and tied-sale information."
//
//   - Trending ("weekly hottest"): purchases carry timestamps; the hottest
//     list counts purchases inside a sliding window, optionally weighting
//     recent ones higher.
//   - TiedSales ("tied-sale information", frequently-bought-together):
//     co-purchase pair counts across consumers, ranked by confidence
//     P(other | product), with a minimum support to keep noise out.

// TrendEntry is one product in a trending listing.
type TrendEntry struct {
	ProductID string
	Count     int     // purchases inside the window
	Score     float64 // recency-weighted count
}

// TiedSale is one frequently-bought-together association.
type TiedSale struct {
	ProductID  string  // the associated product
	Support    int     // consumers who bought both
	Confidence float64 // P(ProductID | anchor) among the anchor's buyers
}

// purchaseEvent is a timestamped purchase for the trending window.
type purchaseEvent struct {
	productID string
	at        time.Time
}

// history tracks timestamped purchases and per-user baskets for the
// extension features. Like the Engine's core state it is partitioned into
// user-keyed shards so concurrent RecordPurchaseAt calls contend only per
// shard; Trending and TiedSales merge the shards on read.
type history struct {
	shards []*histShard
}

type histShard struct {
	mu      sync.Mutex
	events  []purchaseEvent
	baskets map[string]map[string]bool // user -> distinct products bought
}

func newHistory(nshards int) *history {
	h := &history{shards: make([]*histShard, nshards)}
	for i := range h.shards {
		h.shards[i] = &histShard{baskets: make(map[string]map[string]bool)}
	}
	return h
}

func (h *history) shardFor(userID string) *histShard {
	return h.shards[fnv32a(userID)%uint32(len(h.shards))]
}

func (h *history) record(userID, productID string, at time.Time) {
	hs := h.shardFor(userID)
	hs.mu.Lock()
	defer hs.mu.Unlock()
	hs.events = append(hs.events, purchaseEvent{productID: productID, at: at})
	basket := hs.baskets[userID]
	if basket == nil {
		basket = make(map[string]bool)
		hs.baskets[userID] = basket
	}
	basket[productID] = true
}

// RecordPurchaseAt is RecordPurchase with an explicit timestamp, feeding
// the trending window. RecordPurchase uses time.Now. The timestamped
// history is an in-memory extension: it is not journaled, so Trending and
// TiedSales start empty after a restart even with persistence.
func (e *Engine) RecordPurchaseAt(userID, productID string, at time.Time) error {
	if err := e.RecordPurchase(userID, productID); err != nil {
		return err
	}
	e.ext.record(userID, productID, at)
	return nil
}

// Trending returns up to n products ranked by purchases within the window
// ending at now. Score halves per half-window of age, so a spike earlier in
// the window ranks below the same spike just now.
func (e *Engine) Trending(now time.Time, window time.Duration, n int) []TrendEntry {
	cutoff := now.Add(-window)
	type agg struct {
		count int
		score float64
	}
	byProduct := make(map[string]*agg)
	for _, hs := range e.ext.shards {
		hs.mu.Lock()
		for _, ev := range hs.events {
			if ev.at.Before(cutoff) || ev.at.After(now) {
				continue
			}
			a := byProduct[ev.productID]
			if a == nil {
				a = &agg{}
				byProduct[ev.productID] = a
			}
			a.count++
			age := now.Sub(ev.at)
			// Halve per half-window: weight = 2^(-2·age/window).
			weight := 1.0
			if window > 0 {
				frac := float64(age) / float64(window) // 0..1
				weight = pow2(-2 * frac)
			}
			a.score += weight
		}
		hs.mu.Unlock()
	}
	out := make([]TrendEntry, 0, len(byProduct))
	for pid, a := range byProduct {
		out = append(out, TrendEntry{ProductID: pid, Count: a.count, Score: a.score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ProductID < out[j].ProductID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// pow2 computes 2^x for small negative x without importing math just for
// this; accuracy is plenty for ranking weights.
func pow2(x float64) float64 {
	// 2^x = e^(x·ln2); use a short series via repeated squaring on the
	// fractional exponent. For ranking purposes a 7-term series suffices.
	const ln2 = 0.6931471805599453
	y := x * ln2
	sum, term := 1.0, 1.0
	for i := 1; i <= 8; i++ {
		term *= y / float64(i)
		sum += term
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// TiedSales returns up to n products frequently bought together with
// productID: associations with at least minSupport co-buyers, ranked by
// confidence then support.
func (e *Engine) TiedSales(productID string, minSupport, n int) []TiedSale {
	if minSupport < 1 {
		minSupport = 1
	}
	co := make(map[string]int)
	anchorBuyers := 0
	for _, hs := range e.ext.shards {
		hs.mu.Lock()
		for _, basket := range hs.baskets {
			if !basket[productID] {
				continue
			}
			anchorBuyers++
			for other := range basket {
				if other != productID {
					co[other]++
				}
			}
		}
		hs.mu.Unlock()
	}
	if anchorBuyers == 0 {
		return nil
	}
	out := make([]TiedSale, 0, len(co))
	for other, support := range co {
		if support < minSupport {
			continue
		}
		out = append(out, TiedSale{
			ProductID:  other,
			Support:    support,
			Confidence: float64(support) / float64(anchorBuyers),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].ProductID < out[j].ProductID
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
