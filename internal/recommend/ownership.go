package recommend

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"agentrec/internal/ops"
	"agentrec/internal/profile"
)

// This file is the ownership model the replication layer routes by. For
// most of the repo's history ownership was the pure function OwnerOf
// (shard % N over a fixed server list): correct, but rigid — a dead owner
// stalls writes to its shards forever, and the server set cannot change
// without restarting the world. OwnershipMap makes the assignment a
// versioned value instead: an epoch plus an explicit shard→server vector.
// The coordinator's ownership authority (internal/coordinator) mutates the
// map — promoting a caught-up follower when an owner's lease lapses,
// rebalancing on join/leave with a rendezvous choice that moves only the
// shards that must move — and leases it to every server, which holds its
// copy in an OwnershipTable.
//
// The epoch is the fencing token. Every routed write and replication pull
// is stamped with the sender's map epoch, and the receiver's table admits
// it only if the epochs match AND the receiver owns the shard (Fence). A
// deposed owner therefore fails loudly on both sides of every exchange:
// its outgoing frames carry a stale epoch, its incoming frames arrive at a
// server whose epoch has moved on, and its own local writes are refused
// once its lease has expired (Expired) — the classic lease discipline that
// keeps a SIGSTOP'd owner from silently acking writes after waking up.
//
// StaticOwnership(shards, servers) at epoch 1 is exactly the historical
// shard%N map, so deployments without a coordinator keep today's behaviour
// bit for bit: every server derives the same epoch-1 map from its config,
// all stamps agree forever, and the fence never fires.

// Errors reported by the ownership fence.
var (
	// ErrStaleEpoch rejects a frame whose ownership epoch differs from
	// the receiver's — one side of the exchange has an outdated map.
	ErrStaleEpoch = errors.New("recommend: ownership epoch mismatch")
	// ErrNotOwner rejects a write or tail for a shard the receiving
	// server does not own under its current map.
	ErrNotOwner = errors.New("recommend: shard not owned by this server")
	// ErrLeaseExpired refuses local writes on a server whose ownership
	// lease has lapsed: until it renews, it must assume it was deposed.
	ErrLeaseExpired = errors.New("recommend: ownership lease expired")
)

// OwnershipMap is one versioned shard→server assignment: Assign[shard] is
// the owning server's index, Epoch increases by one on every transition.
// The zero map (Epoch 0) means "no map"; real maps start at epoch 1.
type OwnershipMap struct {
	Epoch  uint64 `json:"epoch"`
	Assign []int  `json:"assign"`
}

// StaticOwnership is the degenerate no-coordinator map: shard s owned by
// server s%N at epoch 1 — identical to the historical OwnerOf function, so
// static deployments derive the same map from config alone.
func StaticOwnership(shards, servers int) OwnershipMap {
	m := OwnershipMap{Epoch: 1, Assign: make([]int, shards)}
	for s := range m.Assign {
		m.Assign[s] = OwnerOf(s, servers)
	}
	return m
}

// Owner reports the shard's owning server, or -1 when the map does not
// cover the shard.
func (m OwnershipMap) Owner(shard int) int {
	if shard < 0 || shard >= len(m.Assign) {
		return -1
	}
	return m.Assign[shard]
}

// Clone returns a deep copy, safe to mutate.
func (m OwnershipMap) Clone() OwnershipMap {
	return OwnershipMap{Epoch: m.Epoch, Assign: append([]int(nil), m.Assign...)}
}

// Hash is a stable fingerprint of the assignment (epoch included), for the
// startup consistency check platformd runs across peers.
func (m OwnershipMap) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "epoch=%d;shards=%d;", m.Epoch, len(m.Assign))
	for _, owner := range m.Assign {
		fmt.Fprintf(h, "%d,", owner)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// DiffOwnership lists the shards whose owner changed from prev to next, in
// shard order — the `moved` payload of an ownership event.
func DiffOwnership(prev, next OwnershipMap) []ops.ShardMove {
	var moves []ops.ShardMove
	for s := range next.Assign {
		from := prev.Owner(s)
		if to := next.Assign[s]; to != from {
			moves = append(moves, ops.ShardMove{Shard: s, From: from, To: to})
		}
	}
	return moves
}

// RendezvousOwner picks shard's owner among the live server indices by
// highest-random-weight (rendezvous) hashing: each (shard, server) pair
// hashes to a weight and the highest weight wins. Removing a server moves
// only that server's shards; adding one steals only the shards it now wins
// — the minimal-movement property modulo arithmetic lacks.
func RendezvousOwner(shard int, live []int) int {
	best, bestW := -1, uint64(0)
	for _, srv := range live {
		w := rendezvousWeight(shard, srv)
		if best < 0 || w > bestW || (w == bestW && srv < best) {
			best, bestW = srv, w
		}
	}
	return best
}

// rendezvousWeight is a splitmix64 finalizer over the (shard, server)
// pair: cheap, stateless, and uniform enough for placement.
func rendezvousWeight(shard, server int) uint64 {
	z := uint64(shard)<<32 ^ uint64(uint32(server)) ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// OwnershipTable is one server's live copy of the ownership map: routers
// read it per write, the replicator re-reads it per pull, and the lease
// client advances it whenever the coordinator's grant carries a newer
// epoch. A table without lease tracking (static deployments) never
// expires; a leased table refuses local ownership once its expiry passes
// until the next successful renewal.
type OwnershipTable struct {
	mu         sync.RWMutex
	m          OwnershipMap
	leased     bool
	validUntil time.Time
}

// NewOwnershipTable returns a table holding m.
func NewOwnershipTable(m OwnershipMap) *OwnershipTable {
	return &OwnershipTable{m: m.Clone()}
}

// Current returns a copy of the held map.
func (t *OwnershipTable) Current() OwnershipMap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m.Clone()
}

// Epoch returns the held map's epoch.
func (t *OwnershipTable) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m.Epoch
}

// Owner reports shard's owner under the held map (-1 when uncovered).
func (t *OwnershipTable) Owner(shard int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m.Owner(shard)
}

// Advance adopts m if it is strictly newer than the held map, reporting
// whether the table changed. Stale or same-epoch maps are ignored, so
// out-of-order grant deliveries cannot roll the table back.
func (t *OwnershipTable) Advance(m OwnershipMap) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m.Epoch <= t.m.Epoch {
		return false
	}
	t.m = m.Clone()
	return true
}

// Lease records a renewed ownership lease valid until the given time and
// marks the table lease-managed: from now on, local ownership claims fail
// with ErrLeaseExpired once validUntil passes without another renewal.
func (t *OwnershipTable) Lease(validUntil time.Time) {
	t.mu.Lock()
	t.leased = true
	t.validUntil = validUntil
	t.mu.Unlock()
}

// Expired reports the lease discipline violation, if any: nil for static
// (never-leased) tables and live leases, ErrLeaseExpired once a leased
// table's expiry has passed. A server whose lease lapsed must treat its
// own ownership as suspect — the coordinator may already have promoted a
// follower — so routers check this before acking local writes.
func (t *OwnershipTable) Expired() error {
	t.mu.RLock()
	leased, until := t.leased, t.validUntil
	t.mu.RUnlock()
	if leased && time.Now().After(until) {
		return fmt.Errorf("%w (was valid until %s): renew against the coordinator before serving writes",
			ErrLeaseExpired, until.Format(time.RFC3339Nano))
	}
	return nil
}

// Fence admits a frame stamped with senderEpoch for shard, arriving at
// server self. It enforces the ownership invariant every epoch-fenced
// surface shares: the sender and receiver must hold the same map epoch,
// the receiver must own the shard under that map, and the receiver's own
// lease must be live. Any violation is an error wrapping ErrStaleEpoch,
// ErrNotOwner, or ErrLeaseExpired — a deposed owner's replayed frames and
// a stale receiver both fail loudly instead of split-braining replicas.
func (t *OwnershipTable) Fence(senderEpoch uint64, shard, self int) error {
	if err := t.Expired(); err != nil {
		return err
	}
	t.mu.RLock()
	epoch, owner := t.m.Epoch, t.m.Owner(shard)
	t.mu.RUnlock()
	if senderEpoch != epoch {
		side := "sender"
		if senderEpoch > epoch {
			side = "receiver"
		}
		return fmt.Errorf("%w: frame at epoch %d, server %d at epoch %d (%s is stale)",
			ErrStaleEpoch, senderEpoch, self, epoch, side)
	}
	if owner != self {
		return fmt.Errorf("%w: shard %d owned by server %d at epoch %d, not server %d",
			ErrNotOwner, shard, owner, epoch, self)
	}
	return nil
}

// OwnedWriter is the in-process analogue of a forwarded write frame: each
// write is stamped with the sender's current map epoch and admitted
// through the receiver's fence before touching the engine, exactly as
// replnet's Writer/Handler pair does over TCP. Routers in replicated
// in-process deployments use it as the write surface of every remote
// server, so a deposed sender's routed writes fail loudly there too.
type OwnedWriter struct {
	Local  *Engine         // receiving server's engine
	Self   int             // receiving server's index
	Table  *OwnershipTable // receiving server's table (fences)
	Sender *OwnershipTable // sending server's table (stamps the epoch)
}

func (w OwnedWriter) fence(userID string) error {
	return w.Table.Fence(w.Sender.Epoch(), w.Local.ShardOf(userID), w.Self)
}

// SetProfile implements Writer.
func (w OwnedWriter) SetProfile(p *profile.Profile) error {
	if err := w.fence(p.UserID); err != nil {
		return err
	}
	return w.Local.SetProfile(p)
}

// SetProfiles implements Writer: the whole batch is fenced before any
// profile is installed, so a stale epoch cannot half-apply a batch.
func (w OwnedWriter) SetProfiles(ps []*profile.Profile) error {
	for _, p := range ps {
		if err := w.fence(p.UserID); err != nil {
			return err
		}
	}
	return w.Local.SetProfiles(ps)
}

// RecordPurchase implements Writer.
func (w OwnedWriter) RecordPurchase(userID, productID string) error {
	if err := w.fence(userID); err != nil {
		return err
	}
	return w.Local.RecordPurchase(userID, productID)
}

// RecordPurchaseAt implements Writer.
func (w OwnedWriter) RecordPurchaseAt(userID, productID string, at time.Time) error {
	if err := w.fence(userID); err != nil {
		return err
	}
	return w.Local.RecordPurchaseAt(userID, productID, at)
}

var _ Writer = OwnedWriter{}
