package recommend

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentrec/internal/ops"
	"agentrec/internal/profile"
)

// Event-plane producer tests: the engine and replicator hooks behind
// WithEventBus / WithReplicationEvents must publish faithful events for
// journal appends, served-top-N changes, compaction passes, and lag
// transitions — and publish nothing at all when nothing changed.

// drain reads every event already buffered on sub (Publish buffers
// synchronously, so after a quiesced call sequence this is deterministic).
func drain(t *testing.T, sub *ops.Subscription) []ops.Event {
	t.Helper()
	done, cancel := context.WithCancel(context.Background())
	cancel() // only read what is already buffered
	var out []ops.Event
	for {
		ev, err := sub.Next(done)
		if err != nil {
			return out
		}
		if ev.Kind == ops.KindDropped {
			t.Fatalf("subscription dropped %d events mid-test", ev.Dropped.DroppedEvents)
		}
		out = append(out, ev)
	}
}

func TestEventBusJournalEvents(t *testing.T) {
	bus := ops.NewBus()
	e := fixture(t, WithEventBus(bus, 3), WithJournalFeed(0))
	sub := bus.Subscribe(ops.SubscribeOptions{Kinds: []ops.Kind{ops.KindJournal}})

	p := profile.NewProfile("eve")
	if err := e.SetProfile(p); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordPurchase("eve", "cam1"); err != nil {
		t.Fatal(err)
	}
	evs := drain(t, sub)
	if len(evs) != 2 {
		t.Fatalf("got %d journal events, want 2: %+v", len(evs), evs)
	}
	prof, buy := evs[0].Journal, evs[1].Journal
	if prof.Op != OpProfiles || prof.Records != 1 || prof.PayloadBytes <= 0 {
		t.Errorf("profile event = %+v, want op=profiles records=1 payload>0", prof)
	}
	if buy.Op != OpPurchase || buy.Records != 1 {
		t.Errorf("purchase event = %+v, want op=purchase records=1", buy)
	}
	wantShard := e.ShardOf("eve")
	for _, j := range []ops.JournalEvent{prof, buy} {
		if j.Server != 3 || j.Shard != wantShard {
			t.Errorf("journal event = %+v, want server=3 shard=%d", j, wantShard)
		}
		if j.Seq == 0 {
			t.Errorf("journal event carries no shard seq: %+v", j)
		}
	}
	// Both writes hit eve's shard: the seqs must advance in write order.
	if buy.Seq <= prof.Seq {
		t.Errorf("purchase seq %d not after profile seq %d", buy.Seq, prof.Seq)
	}
}

func TestEventBusRecDelta(t *testing.T) {
	bus := ops.NewBus()
	e := fixture(t, WithEventBus(bus, 0))
	sub := bus.Subscribe(ops.SubscribeOptions{Kinds: []ops.Kind{ops.KindRecDelta}})

	recommend := func() {
		t.Helper()
		if _, err := e.Recommend(StrategyCF, "alice", "laptop", 5); err != nil {
			t.Fatal(err)
		}
	}
	recommend()
	first := drain(t, sub)
	if len(first) != 1 {
		t.Fatalf("first answer published %d deltas, want 1", len(first))
	}
	d := first[0].RecDelta
	if d.UserID != "alice" || d.Category != "laptop" || d.Strategy != "cf" {
		t.Errorf("delta identity = %+v", d)
	}
	if len(d.Top) == 0 || d.Top[0] != "lap2" || len(d.Entered) != len(d.Top) {
		t.Errorf("first delta top=%v entered=%v, want everything entered with lap2 on top", d.Top, d.Entered)
	}
	if d.LatencyMs < 0 {
		t.Errorf("latency_ms = %v", d.LatencyMs)
	}

	// Same answer again: no delta.
	recommend()
	if evs := drain(t, sub); len(evs) != 0 {
		t.Fatalf("unchanged answer republished %d deltas: %+v", len(evs), evs)
	}

	// bob (alice's neighbour) buys lap3: alice's CF answer gains it.
	if err := e.RecordPurchase("bob", "lap3"); err != nil {
		t.Fatal(err)
	}
	recommend()
	changed := drain(t, sub)
	if len(changed) != 1 {
		t.Fatalf("changed answer published %d deltas, want 1", len(changed))
	}
	d = changed[0].RecDelta
	entered := false
	for _, id := range d.Entered {
		entered = entered || id == "lap3"
	}
	if !entered {
		t.Errorf("delta after bob bought lap3: top=%v entered=%v exited=%v, want lap3 entered", d.Top, d.Entered, d.Exited)
	}
}

func TestEventBusCompactionEvent(t *testing.T) {
	bus := ops.NewBus()
	u, profiles := soakUniverse(t)
	e := loadEngineErr(t, u, profiles, WithPersistence(t.TempDir()), WithNeighbors(8),
		WithEventBus(bus, 1))
	defer e.Close()
	sub := bus.Subscribe(ops.SubscribeOptions{Kinds: []ops.Kind{ops.KindCompaction}})

	// Overwrite every profile once so the journal holds garbage to reclaim.
	if err := e.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	if err := e.CompactState(); err != nil {
		t.Fatal(err)
	}
	evs := drain(t, sub)
	if len(evs) != 1 {
		t.Fatalf("got %d compaction events, want 1", len(evs))
	}
	c := evs[0].Compaction
	if c.Server != 1 || c.Compactions != 1 {
		t.Errorf("compaction event = %+v, want server=1 compactions=1", c)
	}
	if c.JournalBytes <= 0 || c.ReclaimedBytes <= 0 {
		t.Errorf("compaction sizing = %+v, want positive journal_bytes and reclaimed_bytes", c)
	}
}

// trimmingPeer serves at most one journal record per tail request — the
// legitimate transport behaviour (a frame budget trims replies to a prefix)
// that leaves a follower observably behind the owner's head.
type trimmingPeer struct{ inner Peer }

func (p trimmingPeer) JournalTail(ctx context.Context, shard int, epoch, since uint64) (TailResult, error) {
	tr, err := p.inner.JournalTail(ctx, shard, epoch, since)
	if err == nil && len(tr.Records) > 1 {
		tr.Records = tr.Records[:1]
		tr.Seq = tr.Records[0].Seq
	}
	return tr, err
}

func (p trimmingPeer) SnapshotPage(ctx context.Context, shard int, epoch, seq uint64, token string) (SnapshotPage, error) {
	return p.inner.SnapshotPage(ctx, shard, epoch, seq, token)
}

func TestReplicationLagTransitionEvents(t *testing.T) {
	u, _ := soakUniverse(t)
	newEngine := func() *Engine {
		e, err := Open(u.Catalog, WithJournalFeed(0), WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	owner, follower := newEngine(), newEngine()

	// A consumer whose shard server 0 owns (shard % 2 == 0).
	user := ""
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("consumer-%d", i)
		if owner.ShardOf(id)%2 == 0 {
			user = id
			break
		}
	}
	if user == "" {
		t.Fatal("no server-0-owned consumer found")
	}

	bus := ops.NewBus()
	sub := bus.Subscribe(ops.SubscribeOptions{Kinds: []ops.Kind{ops.KindLag}})
	peers := []Peer{trimmingPeer{LocalPeer{Engine: owner}}, LocalPeer{Engine: follower}}
	repl, err := NewReplicator(follower, 1, peers, WithReplicationEvents(bus, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repl.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// First pass: epoch-zero cursors force snapshot catch-up of the (empty)
	// shards and pin the feed epoch; lag stays 0 -> 0, so no events yet.
	if err := repl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if evs := drain(t, sub); len(evs) != 0 {
		t.Fatalf("bootstrap sync published %d lag events: %+v", len(evs), evs)
	}

	const writes = 5
	if err := owner.SetProfile(profile.NewProfile(user)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes-1; i++ {
		if err := owner.RecordPurchase(user, u.Products[i%len(u.Products)].ID); err != nil {
			t.Fatal(err)
		}
	}

	// Each pass now applies one trimmed record: the first pull discovers
	// the backlog (0 -> writes-1), each later pull shrinks it, the last one
	// reports the catch-up edge (1 -> 0).
	deadline := time.Now().Add(20 * time.Second)
	for done := false; !done; {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up; stats %+v", repl.Stats())
		}
		if err := repl.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		done = repl.Stats().Lag() == 0
	}

	evs := drain(t, sub)
	if len(evs) < 2 {
		t.Fatalf("got %d lag events, want at least the fall-behind and catch-up edges: %+v", len(evs), evs)
	}
	firstLag, lastLag := evs[0].Lag, evs[len(evs)-1].Lag
	if firstLag.PrevLagRecords != 0 || firstLag.LagRecords == 0 {
		t.Errorf("first transition = %+v, want 0 -> N", firstLag)
	}
	if lastLag.LagRecords != 0 || lastLag.PrevLagRecords == 0 {
		t.Errorf("last transition = %+v, want N -> 0", lastLag)
	}
	prev := firstLag
	for _, ev := range evs[1:] {
		l := ev.Lag
		if l.Server != 1 || l.Shard != firstLag.Shard || l.Owner != 0 {
			t.Errorf("lag event identity = %+v", l)
		}
		if l.PrevLagRecords != prev.LagRecords {
			t.Errorf("transition chain broken: %+v after %+v", l, prev)
		}
		if l.LagRecords == prev.LagRecords {
			t.Errorf("non-transition published: %+v", l)
		}
		prev = l
	}
}
