package recommend

import (
	"errors"
	"testing"
	"time"

	"agentrec/internal/profile"
	"agentrec/internal/workload"
)

func TestStaticOwnershipMatchesOwnerOf(t *testing.T) {
	m := StaticOwnership(16, 3)
	if m.Epoch != 1 {
		t.Fatalf("static map epoch = %d, want 1", m.Epoch)
	}
	for s := 0; s < 16; s++ {
		if got, want := m.Owner(s), OwnerOf(s, 3); got != want {
			t.Fatalf("shard %d: map owner %d, OwnerOf %d", s, got, want)
		}
	}
	if m.Owner(-1) != -1 || m.Owner(16) != -1 {
		t.Fatal("out-of-range shards must report owner -1")
	}
}

func TestOwnershipMapHashDiscriminates(t *testing.T) {
	a := StaticOwnership(8, 2)
	b := StaticOwnership(8, 2)
	if a.Hash() != b.Hash() {
		t.Fatal("identical maps must hash identically")
	}
	c := StaticOwnership(8, 3)
	if a.Hash() == c.Hash() {
		t.Fatal("different assignments must hash differently")
	}
	d := a.Clone()
	d.Epoch = 2
	if a.Hash() == d.Hash() {
		t.Fatal("different epochs must hash differently")
	}
}

func TestDiffOwnership(t *testing.T) {
	prev := StaticOwnership(4, 2) // 0 1 0 1
	next := prev.Clone()
	next.Epoch = 2
	next.Assign[2] = 1
	moves := DiffOwnership(prev, next)
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want exactly shard 2", moves)
	}
	if m := moves[0]; m.Shard != 2 || m.From != 0 || m.To != 1 {
		t.Fatalf("move = %+v, want {2 0 1}", m)
	}
	if DiffOwnership(prev, prev) != nil {
		t.Fatal("identical assignments must diff empty")
	}
}

func TestRendezvousOwnerStability(t *testing.T) {
	// Removing one server must move only that server's shards.
	all := []int{0, 1, 2}
	without2 := []int{0, 1}
	for s := 0; s < 64; s++ {
		before := RendezvousOwner(s, all)
		after := RendezvousOwner(s, without2)
		if before != 2 && after != before {
			t.Fatalf("shard %d moved %d -> %d though server 2's departure should not affect it", s, before, after)
		}
		if before == 2 && after == 2 {
			t.Fatalf("shard %d still assigned to removed server 2", s)
		}
	}
	if RendezvousOwner(0, nil) != -1 {
		t.Fatal("no live servers must yield owner -1")
	}
}

func TestOwnershipTableAdvanceMonotonic(t *testing.T) {
	tab := NewOwnershipTable(StaticOwnership(4, 2))
	newer := StaticOwnership(4, 2)
	newer.Epoch = 3
	newer.Assign[0] = 1
	if !tab.Advance(newer) {
		t.Fatal("strictly newer map must be adopted")
	}
	if tab.Epoch() != 3 || tab.Owner(0) != 1 {
		t.Fatalf("table = epoch %d owner(0)=%d, want 3/1", tab.Epoch(), tab.Owner(0))
	}
	stale := StaticOwnership(4, 2) // epoch 1
	if tab.Advance(stale) {
		t.Fatal("stale map must be ignored")
	}
	same := newer.Clone()
	same.Assign[1] = 0
	if tab.Advance(same) {
		t.Fatal("same-epoch map must be ignored")
	}
}

func TestOwnershipTableLeaseDiscipline(t *testing.T) {
	tab := NewOwnershipTable(StaticOwnership(4, 2))
	if err := tab.Expired(); err != nil {
		t.Fatalf("never-leased (static) table must not expire: %v", err)
	}
	tab.Lease(time.Now().Add(time.Hour))
	if err := tab.Expired(); err != nil {
		t.Fatalf("live lease must not expire: %v", err)
	}
	tab.Lease(time.Now().Add(-time.Millisecond))
	if err := tab.Expired(); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("lapsed lease: err = %v, want ErrLeaseExpired", err)
	}
	// Fence must refuse everything while the lease is lapsed.
	if err := tab.Fence(1, 0, 0); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("fence under lapsed lease: err = %v, want ErrLeaseExpired", err)
	}
	tab.Lease(time.Now().Add(time.Hour))
	if err := tab.Fence(1, 0, 0); err != nil {
		t.Fatalf("fence after renewal: %v", err)
	}
}

func TestOwnershipTableFence(t *testing.T) {
	tab := NewOwnershipTable(StaticOwnership(4, 2)) // owners: 0 1 0 1
	if err := tab.Fence(1, 0, 0); err != nil {
		t.Fatalf("matching epoch, owned shard: %v", err)
	}
	if err := tab.Fence(2, 0, 0); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("ahead-of-receiver epoch: err = %v, want ErrStaleEpoch", err)
	}
	if err := tab.Fence(0, 0, 0); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("unstamped frame: err = %v, want ErrStaleEpoch", err)
	}
	if err := tab.Fence(1, 1, 0); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("unowned shard: err = %v, want ErrNotOwner", err)
	}
}

// TestOwnedWriterFencesRoutedWrites drives the in-process analogue of a
// deposed owner replaying buffered routed writes: once the receiver's map
// moves to a newer epoch, every Writer method of the stale sender fails
// with ErrStaleEpoch and no state is half-applied.
func TestOwnedWriterFencesRoutedWrites(t *testing.T) {
	u, err := workload.Generate(workload.Config{
		Seed: 23, Users: 10, Products: 40, Categories: 4, RelevantPerUser: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(u.Catalog, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	recv := NewOwnershipTable(StaticOwnership(4, 1)) // server 0 owns all
	send := NewOwnershipTable(StaticOwnership(4, 1))
	w := OwnedWriter{Local: eng, Self: 0, Table: recv, Sender: send}

	prof := profile.NewProfile("user-1")
	if err := w.SetProfile(prof); err != nil {
		t.Fatalf("same-epoch write: %v", err)
	}

	// The receiver's world moves on; the sender keeps its old map.
	moved := recv.Current()
	moved.Epoch = 2
	recv.Advance(moved)

	if err := w.SetProfile(prof); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale SetProfile: err = %v, want ErrStaleEpoch", err)
	}
	if err := w.SetProfiles([]*profile.Profile{prof}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale SetProfiles: err = %v, want ErrStaleEpoch", err)
	}
	if err := w.RecordPurchase("user-1", "p1"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale RecordPurchase: err = %v, want ErrStaleEpoch", err)
	}
	if err := w.RecordPurchaseAt("user-1", "p1", time.Now()); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale RecordPurchaseAt: err = %v, want ErrStaleEpoch", err)
	}
}
