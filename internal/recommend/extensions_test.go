package recommend

import (
	"math"
	"testing"
	"time"

	"agentrec/internal/catalog"
)

func extEngine(t *testing.T) *Engine {
	t.Helper()
	cat := catalog.New()
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := cat.Add(&catalog.Product{
			ID: id, Name: id, Category: "x", PriceCents: 100, SellerID: "s", Stock: 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(cat)
}

func TestTrendingWindowFilters(t *testing.T) {
	e := extEngine(t)
	now := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	week := 7 * 24 * time.Hour

	// Inside the window: "a" twice, "b" once. Outside: "c" many times.
	e.RecordPurchaseAt("u1", "a", now.Add(-time.Hour))
	e.RecordPurchaseAt("u2", "a", now.Add(-2*time.Hour))
	e.RecordPurchaseAt("u3", "b", now.Add(-24*time.Hour))
	for i := 0; i < 10; i++ {
		e.RecordPurchaseAt("u4", "c", now.Add(-8*24*time.Hour))
	}

	got := e.Trending(now, week, 10)
	if len(got) != 2 {
		t.Fatalf("Trending = %+v, want 2 entries", got)
	}
	if got[0].ProductID != "a" || got[0].Count != 2 {
		t.Errorf("hottest = %+v, want a with 2", got[0])
	}
	for _, entry := range got {
		if entry.ProductID == "c" {
			t.Error("stale product in trending window")
		}
	}
}

func TestTrendingRecencyWeighting(t *testing.T) {
	e := extEngine(t)
	now := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	week := 7 * 24 * time.Hour
	// Same count, different recency: the fresh one ranks first.
	e.RecordPurchaseAt("u1", "fresh", now.Add(-time.Hour))
	e.RecordPurchaseAt("u2", "stale", now.Add(-6*24*time.Hour))
	got := e.Trending(now, week, 10)
	if len(got) != 2 || got[0].ProductID != "fresh" {
		t.Fatalf("Trending = %+v, want fresh first", got)
	}
	if got[0].Score <= got[1].Score {
		t.Errorf("fresh score %v !> stale score %v", got[0].Score, got[1].Score)
	}
	if got[0].Count != got[1].Count {
		t.Errorf("counts differ: %+v", got)
	}
}

func TestTrendingLimitsAndEmpty(t *testing.T) {
	e := extEngine(t)
	now := time.Now()
	if got := e.Trending(now, time.Hour, 5); len(got) != 0 {
		t.Errorf("empty engine Trending = %v", got)
	}
	for i, id := range []string{"a", "b", "c"} {
		e.RecordPurchaseAt("u", id, now.Add(-time.Duration(i)*time.Minute))
	}
	if got := e.Trending(now, time.Hour, 2); len(got) != 2 {
		t.Errorf("limit not applied: %v", got)
	}
}

func TestPow2(t *testing.T) {
	for _, x := range []float64{0, -0.5, -1, -2} {
		want := math.Pow(2, x)
		got := pow2(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pow2(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestTiedSales(t *testing.T) {
	e := extEngine(t)
	now := time.Now()
	// Baskets: u1{a,b}, u2{a,b}, u3{a,c}, u4{b}.
	e.RecordPurchaseAt("u1", "a", now)
	e.RecordPurchaseAt("u1", "b", now)
	e.RecordPurchaseAt("u2", "a", now)
	e.RecordPurchaseAt("u2", "b", now)
	e.RecordPurchaseAt("u3", "a", now)
	e.RecordPurchaseAt("u3", "c", now)
	e.RecordPurchaseAt("u4", "b", now)

	got := e.TiedSales("a", 1, 10)
	if len(got) != 2 {
		t.Fatalf("TiedSales = %+v", got)
	}
	// b co-bought by 2 of a's 3 buyers; c by 1 of 3.
	if got[0].ProductID != "b" || got[0].Support != 2 {
		t.Errorf("top tie = %+v, want b support 2", got[0])
	}
	if math.Abs(got[0].Confidence-2.0/3) > 1e-12 {
		t.Errorf("confidence = %v, want 2/3", got[0].Confidence)
	}
	// minSupport filters the weak pair.
	got = e.TiedSales("a", 2, 10)
	if len(got) != 1 || got[0].ProductID != "b" {
		t.Errorf("minSupport filter: %+v", got)
	}
}

func TestTiedSalesUnknownProduct(t *testing.T) {
	e := extEngine(t)
	if got := e.TiedSales("nothing", 1, 5); got != nil {
		t.Errorf("TiedSales for unbought product = %v", got)
	}
}

func TestTiedSalesDuplicatePurchasesCountOnce(t *testing.T) {
	e := extEngine(t)
	now := time.Now()
	// u1 buys a twice and b once: support must still be 1.
	e.RecordPurchaseAt("u1", "a", now)
	e.RecordPurchaseAt("u1", "a", now)
	e.RecordPurchaseAt("u1", "b", now)
	got := e.TiedSales("a", 1, 5)
	if len(got) != 1 || got[0].Support != 1 || got[0].Confidence != 1 {
		t.Errorf("TiedSales = %+v", got)
	}
}

func TestRecordPurchaseAtFeedsCoreHistory(t *testing.T) {
	e := extEngine(t)
	e.RecordPurchaseAt("u1", "a", time.Now())
	recs, err := e.Recommend(StrategyTopSeller, "", "", 5)
	if err != nil || len(recs) != 1 || recs[0].ProductID != "a" {
		t.Errorf("top sellers after RecordPurchaseAt = %v, %v", recs, err)
	}
}
