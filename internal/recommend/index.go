package recommend

import (
	"iter"
	"sync"
	"sync/atomic"

	"agentrec/internal/profile"
	"agentrec/internal/similarity"
)

// categoryIndex is the incremental candidate index: for every merchandise
// category, the posting list of consumers with a positive preference value
// there, each posting carrying the consumer's precomputed summary (flat
// vector + preference value). It is maintained on every SetProfile, so CF's
// neighbour search can iterate just the consumers active in the target
// category instead of scanning the whole community.
//
// The restriction is exact, not approximate: the Fig 4.5 gate discards any
// pair where the target has evidence in the category (Tx > 0) and the
// candidate has none (Ty = 0), because |Tx−0|/Tx = 1 exceeds every
// tolerance below 1. So whenever the gate is live, consumers absent from
// the category's posting list could never have contributed anyway.
//
// The index is partitioned by category hash so posting updates and cache
// rebuilds contend per category bucket, never engine-wide. SetProfile
// calls update while holding the consumer's shard lock, so updates for one
// consumer are totally ordered and the index always matches the shard's
// final state — no cross-consumer ordering is needed because postings are
// keyed per consumer.
type categoryIndex struct {
	shards []*indexShard
	// ann enables the LSH shortlist layer (ann.go); nil = exact only.
	// Set once at engine construction, before any postings exist.
	ann *annState
	// writes counts posting-map mutations since construction. The paged
	// catch-up path is asserted against it: re-applying an unchanged shard
	// snapshot must not rebuild the index (Stats.IndexWrites).
	writes atomic.Uint64
}

type indexShard struct {
	mu       sync.RWMutex
	postings map[string]map[string]similarity.Candidate // category -> userID -> candidate
	cache    map[string][]similarity.Candidate          // per-category list, invalidated on write
	ann      map[string]*annCat                         // category -> LSH buckets (used when index.ann != nil)
}

func newCategoryIndex(nshards int) *categoryIndex {
	ix := &categoryIndex{shards: make([]*indexShard, nshards)}
	for i := range ix.shards {
		ix.shards[i] = &indexShard{
			postings: make(map[string]map[string]similarity.Candidate),
			cache:    make(map[string][]similarity.Candidate),
			ann:      make(map[string]*annCat),
		}
	}
	return ix
}

func (ix *categoryIndex) shardFor(category string) *indexShard {
	return ix.shards[fnv32a(category)%uint32(len(ix.shards))]
}

// removeLocked drops userID's posting for cat, and its ANN bucket entries
// with it. No-op (and no write counted) when the posting does not exist.
// Caller holds s.mu for writing.
func (ix *categoryIndex) removeLocked(s *indexShard, cat, userID string) {
	m := s.postings[cat]
	if m == nil {
		return
	}
	old, ok := m[userID]
	if !ok {
		return
	}
	if ix.ann != nil {
		s.annRemoveLocked(ix.ann, cat, old)
	}
	delete(m, userID)
	if len(m) == 0 {
		delete(s.postings, cat)
	}
	delete(s.cache, cat)
	ix.writes.Add(1)
}

// installLocked installs or replaces cand's posting for cat, keeping the
// ANN buckets in step. Caller holds s.mu for writing.
func (ix *categoryIndex) installLocked(s *indexShard, cat string, cand similarity.Candidate) {
	m := s.postings[cat]
	if m == nil {
		m = make(map[string]similarity.Candidate)
		s.postings[cat] = m
	}
	if ix.ann != nil {
		if old, ok := m[cand.UserID]; ok {
			s.annRemoveLocked(ix.ann, cat, old)
		}
	}
	m[cand.UserID] = cand
	if ix.ann != nil {
		s.annInstallLocked(ix.ann, cat, cand)
	}
	delete(s.cache, cat)
	ix.writes.Add(1)
}

// update applies one SetProfile transition: remove the consumer's postings
// for categories only the previous summary had, install the new summary's.
// prev is the summary the shard map held before this write (nil on first
// install). The caller holds the consumer's shard lock, which serializes
// same-consumer updates; prev summaries therefore chain, so the union of
// prev and new categories covers every posting that needs touching.
func (ix *categoryIndex) update(prev, sum *profile.Summary) {
	if prev != nil {
		for cat := range prev.Prefs {
			if _, still := sum.Prefs[cat]; still {
				continue // about to be overwritten below
			}
			s := ix.shardFor(cat)
			s.mu.Lock()
			ix.removeLocked(s, cat, sum.UserID)
			s.mu.Unlock()
		}
	}
	for cat, ty := range sum.Prefs {
		s := ix.shardFor(cat)
		s.mu.Lock()
		ix.installLocked(s, cat, similarity.Candidate{
			UserID: sum.UserID, Vec: sum.Vec, Ty: ty, Norm: sum.Norm, Dense: sum.Dense,
		})
		s.mu.Unlock()
	}
}

// postingChange is one SetProfile transition for updateBatch: the summary
// the shard map held before the write (nil on first install) and the one
// just installed.
type postingChange struct {
	prev, sum *profile.Summary
}

// updateBatch applies many SetProfile transitions with one lock
// acquisition per touched category bucket instead of one per (profile,
// category) pair — the bulk-install path. Per-bucket op order follows the
// changes order, so a consumer appearing twice resolves to the later
// entry, exactly as sequential update calls would. The caller holds the
// consumers' shard lock (all changes belong to one shard).
func (ix *categoryIndex) updateBatch(changes []postingChange) {
	type op struct {
		cat    string
		userID string
		cand   similarity.Candidate
		remove bool
	}
	byBucket := make(map[*indexShard][]op)
	for _, ch := range changes {
		if ch.prev != nil {
			for cat := range ch.prev.Prefs {
				if _, still := ch.sum.Prefs[cat]; still {
					continue
				}
				s := ix.shardFor(cat)
				byBucket[s] = append(byBucket[s], op{cat: cat, userID: ch.sum.UserID, remove: true})
			}
		}
		for cat, ty := range ch.sum.Prefs {
			s := ix.shardFor(cat)
			byBucket[s] = append(byBucket[s], op{
				cat: cat, userID: ch.sum.UserID,
				cand: similarity.Candidate{
					UserID: ch.sum.UserID, Vec: ch.sum.Vec, Ty: ty,
					Norm: ch.sum.Norm, Dense: ch.sum.Dense,
				},
			})
		}
	}
	for s, ops := range byBucket {
		s.mu.Lock()
		for _, o := range ops {
			if o.remove {
				ix.removeLocked(s, o.cat, o.userID)
			} else {
				ix.installLocked(s, o.cat, o.cand)
			}
		}
		s.mu.Unlock()
	}
}

// candidates streams the posting list for category. The backing slice is
// immutable once built (writes invalidate rather than mutate), so iteration
// is lock-free; rebuild cost is paid once per category per write burst and
// blocks only this category's bucket.
func (ix *categoryIndex) candidates(category string) iter.Seq[similarity.Candidate] {
	s := ix.shardFor(category)
	s.mu.RLock()
	list, ok := s.cache[category]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if list, ok = s.cache[category]; !ok {
			m := s.postings[category]
			list = make([]similarity.Candidate, 0, len(m))
			for _, c := range m {
				list = append(list, c)
			}
			s.cache[category] = list
		}
		s.mu.Unlock()
	}
	return func(yield func(similarity.Candidate) bool) {
		for _, c := range list {
			if !yield(c) {
				return
			}
		}
	}
}

// size reports the number of indexed categories and total postings.
func (ix *categoryIndex) size() (categories, postings int) {
	for _, s := range ix.shards {
		s.mu.RLock()
		categories += len(s.postings)
		for _, m := range s.postings {
			postings += len(m)
		}
		s.mu.RUnlock()
	}
	return categories, postings
}
