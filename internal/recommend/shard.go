package recommend

import (
	"sync"
	"sync/atomic"

	"agentrec/internal/profile"
)

// The engine partitions its community state into user-keyed shards (fnv-1a
// on the consumer id) so profile installs, purchase records, and
// recommendation reads contend only per shard, never on one engine-wide
// lock. Each shard additionally maintains a copy-on-read immutable view
// (shardView) so the recommendation hot path runs lock-free against a
// consistent picture of the shard: a view is rebuilt at most once per write
// generation and then shared by every reader until the next write.

// DefaultShards is the shard count NewEngine uses unless WithShards
// overrides it.
const DefaultShards = 16

// fnv32a is the 32-bit FNV-1a hash, inlined to keep user-to-shard routing
// allocation-free.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// stored pairs an installed profile with its precomputed fingerprint. Both
// are immutable once installed: SetProfile replaces the whole entry.
type stored struct {
	prof *profile.Profile
	sum  *profile.Summary
}

// shard is one partition of the community: the profiles and purchase
// histories of the consumers that hash here.
//
// With persistence enabled a shard may be spilled: its maps dropped from
// memory while its state lives on in the engine's Persister (and its
// postings stay in the candidate index). resident is written under mu and
// read atomically so the eviction scan never takes shard locks; lastAccess
// is a logical LRU clock bumped on every access.
type shard struct {
	mu        sync.RWMutex
	profiles  map[string]*stored
	purchases map[string]map[string]bool // user -> product set
	sells     map[string]int64           // product -> sales by THIS shard's users

	id         int         // position in Engine.shards, names persister buckets
	resident   atomic.Bool // maps are in memory (always true without spilling)
	lastAccess atomic.Uint64

	gen  atomic.Uint64             // bumped under mu on every write
	view atomic.Pointer[shardView] // cached immutable view; stale when gen moved
}

func newShard(id int) *shard {
	sh := &shard{
		id:        id,
		profiles:  make(map[string]*stored),
		purchases: make(map[string]map[string]bool),
		sells:     make(map[string]int64),
	}
	sh.resident.Store(true)
	return sh
}

// shardView is an immutable snapshot of one shard. profiles entries are
// shared (they are immutable in place); purchase sets are deep-copied at
// build time so later RecordPurchase calls cannot tear a reader.
type shardView struct {
	gen       uint64
	profiles  map[string]*stored
	purchases map[string]map[string]bool
}

// snapshot returns the current immutable view, rebuilding it only when a
// write happened since the last build. The fast path is two atomic loads.
// A spilled shard has no materializable view: snapshot returns nil and the
// caller must fault the shard in first (eviction bumps gen, so a stale
// cached view can never satisfy the fast path).
func (sh *shard) snapshot() *shardView {
	if v := sh.view.Load(); v != nil && v.gen == sh.gen.Load() {
		return v
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !sh.resident.Load() {
		return nil
	}
	if v := sh.view.Load(); v != nil && v.gen == sh.gen.Load() {
		return v
	}
	v := &shardView{
		gen:       sh.gen.Load(),
		profiles:  make(map[string]*stored, len(sh.profiles)),
		purchases: make(map[string]map[string]bool, len(sh.purchases)),
	}
	for id, st := range sh.profiles {
		v.profiles[id] = st
	}
	for id, set := range sh.purchases {
		cp := make(map[string]bool, len(set))
		for pid := range set {
			cp[pid] = true
		}
		v.purchases[id] = cp
	}
	sh.view.Store(v)
	return v
}

// sellShard is one partition of the product sell counts (fnv-1a on the
// product id). Counters are atomic so concurrent purchases of the same
// product never serialize beyond the map lookup; the map lock is taken for
// writing only on a product's first sale.
type sellShard struct {
	mu     sync.RWMutex
	counts map[string]*atomic.Int64
	id     int // position in Engine.sells, names the persister bucket
}

func newSellShard(id int) *sellShard {
	return &sellShard{counts: make(map[string]*atomic.Int64), id: id}
}

func (ss *sellShard) bump(productID string) { ss.add(productID, 1) }

// add moves the product's served count by delta (negative when a replica
// snapshot shrinks a shard's attributed sells).
func (ss *sellShard) add(productID string, delta int64) {
	ss.mu.RLock()
	c := ss.counts[productID]
	ss.mu.RUnlock()
	if c == nil {
		ss.mu.Lock()
		if c = ss.counts[productID]; c == nil {
			c = new(atomic.Int64)
			ss.counts[productID] = c
		}
		ss.mu.Unlock()
	}
	c.Add(delta)
}

// each calls fn for every product with a positive count.
func (ss *sellShard) each(fn func(productID string, count int64)) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	for pid, c := range ss.counts {
		if n := c.Load(); n > 0 {
			fn(pid, n)
		}
	}
}
