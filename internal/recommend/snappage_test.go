package recommend

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"agentrec/internal/profile"
	"agentrec/internal/workload"
)

// Unit tests for the paged snapshot protocol: page reassembly equals the
// whole-shard snapshot, a moved pin restarts the transfer, spilled shards
// page without faulting in, and trimmed tail replies leave real lag in
// Stats. The TCP end of the protocol is tested in internal/replnet.

// pagedShard returns a shard of e that actually holds consumers, with its
// whole-shard snapshot and pin for comparison.
func pagedShard(t *testing.T, e *Engine) (shard int, tr TailResult) {
	t.Helper()
	best, bestUsers := -1, 0
	for s := 0; s < e.nshards; s++ {
		res, err := e.JournalTail(s, 0, 0) // stale cursor: forces a snapshot
		if err != nil {
			t.Fatal(err)
		}
		if res.Snapshot == nil {
			t.Fatalf("shard %d: stale cursor served records, want snapshot", s)
		}
		if n := len(res.Snapshot.Profiles); n > bestUsers {
			best, bestUsers, tr = s, n, res
		}
	}
	if best < 0 || bestUsers < 4 {
		t.Fatalf("no shard with enough consumers to page (best %d: %d users)", best, bestUsers)
	}
	return best, tr
}

// pageAll drives a full paged transfer against e at the given pin,
// asserting it takes more than one page.
func pageAll(t *testing.T, e *Engine, shard int, epoch, seq uint64, maxBytes int) *ShardSnapshot {
	t.Helper()
	var asm snapshotAssembler
	token := ""
	pages := 0
	for {
		pg, err := e.SnapshotPage(shard, epoch, seq, token, maxBytes)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Epoch != epoch || pg.Seq != seq {
			t.Fatalf("pin moved mid-transfer: (%d,%d) -> (%d,%d)", epoch, seq, pg.Epoch, pg.Seq)
		}
		asm.add(pg)
		pages++
		if pg.Next == "" {
			break
		}
		token = pg.Next
		if pages > 10000 {
			t.Fatal("paged transfer does not terminate")
		}
	}
	if pages < 2 {
		t.Fatalf("transfer took %d page(s); shrink the budget so paging is exercised", pages)
	}
	return asm.snapshot()
}

// snapshotsEqual compares two shard snapshots order-insensitively (the
// whole-shard cut follows map iteration order, pages follow key order).
func snapshotsEqual(t *testing.T, got, want *ShardSnapshot) {
	t.Helper()
	toSets := func(s *ShardSnapshot) (profs map[string]bool, purch map[PurchasePair]bool, sells map[string]int64) {
		profs = make(map[string]bool, len(s.Profiles))
		for _, enc := range s.Profiles {
			profs[string(enc)] = true
		}
		purch = make(map[PurchasePair]bool, len(s.Purchases))
		for _, pp := range s.Purchases {
			purch[pp] = true
		}
		sells = make(map[string]int64, len(s.Sells))
		for pid, n := range s.Sells {
			sells[pid] = n
		}
		return profs, purch, sells
	}
	gp, gu, gs := toSets(got)
	wp, wu, ws := toSets(want)
	if !reflect.DeepEqual(gp, wp) {
		t.Fatalf("paged profiles differ from whole snapshot: %d vs %d", len(gp), len(wp))
	}
	if !reflect.DeepEqual(gu, wu) {
		t.Fatalf("paged purchases differ from whole snapshot: %d vs %d", len(gu), len(wu))
	}
	if !reflect.DeepEqual(gs, ws) {
		t.Fatalf("paged sells differ from whole snapshot: %v vs %v", gs, ws)
	}
}

// TestSnapshotPagesReassembleWholeShard: a paged transfer under a tiny
// budget must reassemble exactly the whole-shard snapshot.
func TestSnapshotPagesReassembleWholeShard(t *testing.T) {
	u, profiles := soakUniverse(t)
	e, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := e.RecordPurchase(user, pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	shard, tr := pagedShard(t, e)
	paged := pageAll(t, e, shard, tr.Epoch, tr.Seq, 1024)
	snapshotsEqual(t, paged, tr.Snapshot)
}

// TestSnapshotPageRestartsOnMovedPin: a write between pages moves the
// shard's seq, so the next page request is answered with the first page of
// a fresh transfer at a new pin, which includes the write.
func TestSnapshotPageRestartsOnMovedPin(t *testing.T) {
	u, profiles := soakUniverse(t)
	e, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	shard, tr := pagedShard(t, e)
	first, err := e.SnapshotPage(shard, tr.Epoch, tr.Seq, "", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if first.Next == "" {
		t.Fatal("transfer fit one page; shrink the budget")
	}

	// A write to the paged shard moves the pin.
	var moved *profile.Profile
	for i := 0; ; i++ {
		id := fmt.Sprintf("mid-transfer-%d", i)
		if e.ShardOf(id) == shard {
			moved = profile.NewProfile(id)
			break
		}
	}
	if err := e.SetProfile(moved); err != nil {
		t.Fatal(err)
	}

	second, err := e.SnapshotPage(shard, tr.Epoch, tr.Seq, first.Next, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if second.Epoch != tr.Epoch || second.Seq != tr.Seq+1 {
		t.Fatalf("restarted page pin = (%d,%d), want fresh pin (%d,%d)",
			second.Epoch, second.Seq, tr.Epoch, tr.Seq+1)
	}
	// Completing the restarted transfer yields the post-write state.
	paged := pageAll(t, e, shard, second.Epoch, second.Seq, 1024)
	want, err := e.JournalTail(shard, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, paged, want.Snapshot)
	found := false
	for _, enc := range paged.Profiles {
		p, err := profile.Unmarshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		if p.UserID == moved.UserID {
			found = true
		}
	}
	if !found {
		t.Fatalf("restarted transfer misses the mid-transfer write %s", moved.UserID)
	}
}

// TestSnapshotPageSpilledShardStaysSpilled: pages of a spilled shard are
// served from the Persister without faulting the shard in.
func TestSnapshotPageSpilledShardStaysSpilled(t *testing.T) {
	u, profiles := soakUniverse(t)
	e, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8),
		WithPersistence(t.TempDir()), WithMaxResidentShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	spilled := -1
	for s := 0; s < e.nshards; s++ {
		if !e.shards[s].resident.Load() {
			if ids, err := e.persist.ShardUsers(s); err == nil && len(ids) >= 4 {
				spilled = s
				break
			}
		}
	}
	if spilled < 0 {
		t.Fatal("no populated spilled shard under WithMaxResidentShards(1)")
	}
	tr, err := e.JournalTail(spilled, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	paged := pageAll(t, e, spilled, tr.Epoch, tr.Seq, 1024)
	snapshotsEqual(t, paged, tr.Snapshot)
	if e.shards[spilled].resident.Load() {
		t.Fatalf("paging faulted shard %d in", spilled)
	}
}

// truncatingPeer serves real tails but cuts every record reply to a
// one-record prefix, the in-process stand-in for a transport trimming to
// its frame budget.
type truncatingPeer struct{ e *Engine }

func (p truncatingPeer) JournalTail(_ context.Context, shard int, epoch, since uint64) (TailResult, error) {
	tr, err := p.e.JournalTail(shard, epoch, since)
	if err == nil && len(tr.Records) > 1 {
		tr.Records = tr.Records[:1]
		tr.Seq = tr.Records[0].Seq
	}
	return tr, err
}

func (p truncatingPeer) SnapshotPage(_ context.Context, shard int, epoch, seq uint64, token string) (SnapshotPage, error) {
	return p.e.SnapshotPage(shard, epoch, seq, token, 0)
}

// TestTrimmedReplyLeavesRealLag: when the transport trims a reply, the
// follower is genuinely behind the owner, and Stats must report that lag
// (OwnerSeq carries the owner's feed head, not the trimmed reply's end).
func TestTrimmedReplyLeavesRealLag(t *testing.T) {
	u, profiles := soakUniverse(t)
	owner, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8), WithNeighbors(8))
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	follower, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8), WithNeighbors(8))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	r, err := NewReplicator(follower, 1, []Peer{truncatingPeer{e: owner}, nil})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Sync(ctx); err != nil { // establish cursors while empty
		t.Fatal(err)
	}
	// Seed only consumers on server-0-owned shards, so the pure follower's
	// replicated half is the whole populated community.
	seeded := 0
	for _, p := range profiles {
		if OwnerOf(owner.ShardOf(p.UserID), 2) != 0 {
			continue
		}
		if err := owner.SetProfile(p); err != nil {
			t.Fatal(err)
		}
		seeded++
	}
	if seeded < 16 {
		t.Fatalf("only %d consumers landed on server-0 shards; universe too small", seeded)
	}
	if err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if lag := st.Lag(); lag == 0 {
		t.Fatalf("one-record-per-pull follower of a %d-write owner reports zero lag", seeded)
	}
	behind := 0
	for _, sh := range st.Shards {
		if sh.Lag() > 0 {
			behind++
			if sh.OwnerSeq <= sh.AppliedSeq {
				t.Fatalf("shard %d: lag without OwnerSeq (%d) past AppliedSeq (%d)",
					sh.Shard, sh.OwnerSeq, sh.AppliedSeq)
			}
		}
	}
	if behind == 0 {
		t.Fatal("no shard reports being behind")
	}
	// Catching up drains the lag to zero.
	for i := 0; i < seeded+8; i++ {
		if err := r.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if lag := r.Stats().Lag(); lag != 0 {
		t.Fatalf("lag = %d after full catch-up", lag)
	}
	communityEqual(t, owner, follower)
}

// pagingPeer adapts an in-process engine the way replnet does: snapshot
// tail replies become Paged markers, forcing the follower through the page
// loop. It can fail one page call to simulate a cut transport, and counts
// token requests so tests can prove resumption versus re-download.
type pagingPeer struct {
	e      *Engine
	failAt int // 1-based page call to fail once; 0 = never
	calls  int
	tokens map[string]int
}

func (p *pagingPeer) JournalTail(_ context.Context, shard int, epoch, since uint64) (TailResult, error) {
	tr, err := p.e.JournalTail(shard, epoch, since)
	if err == nil && tr.Snapshot != nil {
		tr = TailResult{Shards: tr.Shards, Epoch: tr.Epoch, Seq: tr.Seq, Head: tr.Head, Paged: true}
	}
	return tr, err
}

func (p *pagingPeer) SnapshotPage(_ context.Context, shard int, epoch, seq uint64, token string) (SnapshotPage, error) {
	p.calls++
	p.tokens[fmt.Sprintf("%d|%d|%d|%s", shard, epoch, seq, token)]++
	if p.calls == p.failAt {
		p.failAt = 0
		return SnapshotPage{}, errors.New("simulated transport cut")
	}
	return p.e.SnapshotPage(shard, epoch, seq, token, 512)
}

// TestPagedTransferResumesAcrossPulls: a transfer interrupted mid-flight
// (context expiry, transport cut) must resume from its saved continuation
// token on the next pull while the pin is unchanged — re-downloading a
// large bootstrap from scratch every pull would make a transfer longer
// than the background loop's per-pass budget livelock forever.
func TestPagedTransferResumesAcrossPulls(t *testing.T) {
	u, profiles := soakUniverse(t)
	owner, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	seeded := 0
	for _, p := range profiles {
		if OwnerOf(owner.ShardOf(p.UserID), 2) != 0 {
			continue
		}
		if err := owner.SetProfile(p); err != nil {
			t.Fatal(err)
		}
		seeded++
	}
	follower, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	peer := &pagingPeer{e: owner, failAt: 3, tokens: make(map[string]int)}
	r, err := NewReplicator(follower, 1, []Peer{peer, nil})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Sync(ctx); err == nil {
		t.Fatal("first pass should report the simulated transport cut")
	}
	// Mid-bootstrap, the follower is maximally behind: Stats must already
	// report the lag against the owner's pinned head, not zero.
	if lag := r.Stats().Lag(); lag == 0 {
		t.Fatal("in-flight paged bootstrap reports zero lag")
	}
	if err := r.Sync(ctx); err != nil {
		t.Fatalf("second pass should resume and complete: %v", err)
	}
	// Exactly the failed page request repeats; every other page of every
	// transfer is fetched once. Without resumption the whole prefix of the
	// cut shard's transfer would repeat.
	dups := 0
	for tok, n := range peer.tokens {
		if n > 2 {
			t.Fatalf("page %q requested %d times", tok, n)
		}
		if n == 2 {
			dups++
		}
	}
	if dups != 1 {
		t.Fatalf("%d page requests repeated, want exactly the failed one", dups)
	}
	if got, want := follower.Users(), owner.Users(); !reflect.DeepEqual(got, want) || len(got) != seeded {
		t.Fatalf("user sets differ after resumed transfer: %d vs %d", len(got), len(want))
	}
}

// BenchmarkReplicationCatchUp measures a cold follower's full snapshot
// catch-up from an in-process owner: the cost of bootstrapping a replica
// of a warm community.
func BenchmarkReplicationCatchUp(b *testing.B) {
	u, err := workload.Generate(workload.Config{
		Seed: 23, Users: 500, Products: 400, Categories: 8, RelevantPerUser: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	profiles := make([]*profile.Profile, len(u.Users))
	for i, usr := range u.Users {
		if profiles[i], err = u.BuildProfile(usr); err != nil {
			b.Fatal(err)
		}
	}
	owner, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	defer owner.Close()
	if err := owner.SetProfiles(profiles); err != nil {
		b.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := owner.RecordPurchase(user, pid); err != nil {
				b.Fatal(err)
			}
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		follower, err := Open(u.Catalog, WithJournalFeed(0), WithShards(8))
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewReplicator(follower, 1, []Peer{LocalPeer{Engine: owner}, nil})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		r.Close()
		follower.Close()
	}
}
