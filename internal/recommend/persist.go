package recommend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"agentrec/internal/kvstore"
	"agentrec/internal/profile"
)

// This file is the engine's durability layer. The paper's Buyer Agent
// Server holds every consumer's interest profile and purchase history; at
// production scale that community must survive a server restart and must
// not be forced to fit in memory. The engine therefore write-through
// journals every mutation to a Persister (one atomic batch per mutation),
// recovers the full community — profiles, purchase sets, sell counts, and
// the per-category candidate index — on construction, and can spill cold
// shards out of memory entirely: because every write is already durable,
// spilling is just dropping the maps, and fault-in is a bucket scan.
//
// See DESIGN.md "Durability" for the WAL layout and spill policy.

// Errors reported by the persistence layer.
var (
	ErrNoPersistence = errors.New("recommend: engine has no persistence configured")
	ErrBadKey        = errors.New("recommend: id contains NUL byte")
)

// ShardData is one community shard as recovered from a Persister.
type ShardData struct {
	Profiles  []*profile.Profile
	Purchases map[string]map[string]bool // user -> product set
}

// Persister journals community mutations durably and replays them on
// engine construction. Implementations must be safe for concurrent use;
// the engine guarantees that calls touching one shard's buckets are
// serialized by that shard's lock, so per-shard write order in the journal
// matches in-memory order.
type Persister interface {
	// SaveProfiles durably installs profiles into shard's bucket, as one
	// atomic batch. It is called before the in-memory install (journal
	// first), so a crash can lose an acknowledged write only if SaveProfiles
	// itself errored.
	SaveProfiles(shard int, profs []*profile.Profile) error
	// SavePurchase durably records userID buying productID (in userShard's
	// bucket) together with the product's new total sell count (in
	// sellShard's bucket), as one atomic batch.
	SavePurchase(userShard int, userID, productID string, sellShard int, total int64) error
	// LoadShard recovers one shard's profiles and purchase sets.
	LoadShard(shard int) (ShardData, error)
	// LoadSells recovers one sell shard's product -> total map.
	LoadSells(shard int) (map[string]int64, error)
	// ShardUsers lists the consumer ids stored in shard without loading
	// profiles, so Users/Stats can answer for spilled shards cheaply.
	ShardUsers(shard int) ([]string, error)
	// Compact rewrites the journal down to live state.
	Compact() error
	// Close flushes and releases the journal. Must be idempotent.
	Close() error
}

// WithPersistence journals the engine's community to a WAL-backed kvstore
// under dir (created if absent) and recovers any existing state on
// construction. Engines with persistence must be built with Open, which
// can report recovery errors, and should be Closed.
func WithPersistence(dir string) Option {
	return func(e *Engine) { e.stateDir = dir }
}

// WithPersister uses a caller-supplied Persister instead of the kvstore
// one WithPersistence opens. Like WithPersistence it requires Open.
func WithPersister(p Persister) Option {
	return func(e *Engine) { e.persist = p }
}

// WithMaxResidentShards bounds how many community shards stay in memory at
// once (LRU by last access); the rest spill to the Persister and fault back
// in transparently on access. Only meaningful with persistence; n is
// clamped to at least 1. Zero (the default) keeps every shard resident.
func WithMaxResidentShards(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxResident = n
		}
	}
}

// spilling reports whether shards may leave memory.
func (e *Engine) spilling() bool {
	return e.persist != nil && e.maxResident > 0 && e.maxResident < e.nshards
}

// Err returns the sticky persistence error, if any: a fault-in failure on
// a read path that had no error return. Close surfaces it too.
func (e *Engine) Err() error {
	e.resMu.Lock()
	defer e.resMu.Unlock()
	return e.stickyErr
}

func (e *Engine) setErr(err error) {
	e.resMu.Lock()
	if e.stickyErr == nil {
		e.stickyErr = err
	}
	e.resMu.Unlock()
}

// Close releases the engine's Persister (a no-op for memory-only engines)
// and reports any sticky persistence error. It is idempotent.
func (e *Engine) Close() error {
	var err error
	if e.persist != nil {
		err = e.persist.Close()
	}
	if serr := e.Err(); err == nil {
		err = serr
	}
	return err
}

// CompactState rewrites the persistence journal down to live state,
// shrinking a WAL that accumulated profile overwrites. ErrNoPersistence
// for memory-only engines.
func (e *Engine) CompactState() error {
	if e.persist == nil {
		return ErrNoPersistence
	}
	return e.persist.Compact()
}

// --- residency: touch, fault-in, LRU eviction ---

// touch bumps the shard's LRU clock.
func (e *Engine) touch(sh *shard) {
	if e.spilling() {
		sh.lastAccess.Store(e.clock.Add(1))
	}
}

// lockResidentW acquires sh.mu for writing with the shard guaranteed
// resident, faulting it in from the Persister if it was spilled. The caller
// must Unlock and then call maybeEvict.
func (e *Engine) lockResidentW(sh *shard) error {
	sh.mu.Lock()
	if !sh.resident.Load() {
		if err := e.faultInLocked(sh); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	e.touch(sh)
	return nil
}

// faultInLocked reloads a spilled shard from the Persister. Caller holds
// sh.mu for writing. The candidate index is untouched: postings survive
// spilling, so they are already exact for the shard's durable state.
func (e *Engine) faultInLocked(sh *shard) error {
	data, err := e.persist.LoadShard(sh.id)
	if err != nil {
		return fmt.Errorf("recommend: faulting in shard %d: %w", sh.id, err)
	}
	sh.profiles = make(map[string]*stored, len(data.Profiles))
	for _, prof := range data.Profiles {
		sh.profiles[prof.UserID] = &stored{prof: prof, sum: prof.Summary()}
	}
	if data.Purchases == nil {
		data.Purchases = make(map[string]map[string]bool)
	}
	sh.purchases = data.Purchases
	sh.gen.Add(1)
	sh.resident.Store(true)
	e.resMu.Lock()
	e.residentN++
	e.resMu.Unlock()
	return nil
}

// maybeEvict spills least-recently-accessed shards until the resident
// count is back under the cap. keep is the shard just served; it is never
// the victim. At most one shard lock is held at a time (lock order shard
// -> resMu, same as fault-in), so eviction can never deadlock with
// concurrent fault-ins.
func (e *Engine) maybeEvict(keep *shard) {
	if !e.spilling() {
		return
	}
	for {
		e.resMu.Lock()
		over := e.residentN > e.maxResident
		e.resMu.Unlock()
		if !over {
			return
		}
		var victim *shard
		var oldest uint64
		for _, sh := range e.shards {
			if sh == keep || !sh.resident.Load() {
				continue
			}
			if at := sh.lastAccess.Load(); victim == nil || at < oldest {
				victim, oldest = sh, at
			}
		}
		if victim == nil {
			return
		}
		victim.mu.Lock()
		if victim.resident.Load() {
			victim.profiles = nil
			victim.purchases = nil
			victim.resident.Store(false)
			victim.gen.Add(1) // invalidate any cached view
			victim.view.Store(nil)
			e.resMu.Lock()
			e.residentN--
			e.resMu.Unlock()
		}
		victim.mu.Unlock()
	}
}

// faultIn makes sh resident (no-op if it already is), then rebalances the
// resident set. Takes and releases sh.mu.
func (e *Engine) faultIn(sh *shard) error {
	sh.mu.Lock()
	if !sh.resident.Load() {
		if err := e.faultInLocked(sh); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	e.touch(sh)
	sh.mu.Unlock()
	e.maybeEvict(sh)
	return nil
}

// residentView returns an immutable view of sh, faulting the shard in if
// it was spilled. Used by lazy Snapshots.
func (e *Engine) residentView(sh *shard) (*shardView, error) {
	for tries := 0; tries < 16; tries++ {
		if v := sh.snapshot(); v != nil {
			e.touch(sh)
			return v, nil
		}
		if err := e.faultIn(sh); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("recommend: shard %d thrashing between fault-in and eviction", sh.id)
}

// recover replays the Persister into the engine: postings for every
// consumer (the index is always fully resident), shard maps up to the
// resident cap, and the sell counters. Called by Open before the engine is
// shared, so no locks are needed.
func (e *Engine) recover() error {
	for _, sh := range e.shards {
		data, err := e.persist.LoadShard(sh.id)
		if err != nil {
			return fmt.Errorf("recommend: recovering shard %d: %w", sh.id, err)
		}
		keep := e.maxResident <= 0 || e.residentN < e.maxResident
		for _, prof := range data.Profiles {
			sum := prof.Summary()
			e.index.update(nil, sum)
			if keep {
				sh.profiles[prof.UserID] = &stored{prof: prof, sum: sum}
			}
		}
		if keep {
			if data.Purchases != nil {
				sh.purchases = data.Purchases
			}
			e.residentN++
		} else {
			sh.profiles = nil
			sh.purchases = nil
			sh.resident.Store(false)
		}
	}
	for _, ss := range e.sells {
		counts, err := e.persist.LoadSells(ss.id)
		if err != nil {
			return fmt.Errorf("recommend: recovering sell shard %d: %w", ss.id, err)
		}
		for pid, total := range counts {
			c := ss.counts[pid]
			if c == nil {
				c = new(atomic.Int64)
				ss.counts[pid] = c
			}
			c.Store(total)
		}
	}
	return nil
}

// --- the kvstore-backed Persister ---

// Bucket scheme: one bucket per shard and kind, so recovery and fault-in
// are single ordered prefix scans and shard buckets never interleave.
//
//	prof/<shard>  : <userID>                 -> profile JSON
//	purch/<shard> : <userID> \x00 <productID> -> 0x01
//	sell/<shard>  : <productID>              -> decimal total
const (
	bucketProfiles  = "prof/"
	bucketPurchases = "purch/"
	bucketSells     = "sell/"
)

// CommunityWAL is the journal file name under a WithPersistence dir.
const CommunityWAL = "community.wal"

// kvPersister is the Persister WithPersistence opens: all shards share one
// kvstore.Store whose WAL provides atomic batches, torn-tail recovery, and
// its own synchronization.
type kvPersister struct {
	store *kvstore.Store
}

// OpenPersister opens (creating if needed) the kvstore-backed Persister
// rooted at dir. Exposed so tools can inspect or compact a community
// journal without building an Engine.
func OpenPersister(dir string) (Persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recommend: creating state dir: %w", err)
	}
	store, err := kvstore.Open(filepath.Join(dir, CommunityWAL))
	if err != nil {
		return nil, err
	}
	return &kvPersister{store: store}, nil
}

// saveProfilesChunk bounds one durable batch well under the kvstore record
// cap; a bulk install larger than this is split into several atomic
// batches (equivalent to a sequence of smaller SetProfiles calls).
const saveProfilesChunk = 4 << 20 // 4 MiB of encoded profiles

func profBucket(shard int) string  { return bucketProfiles + strconv.Itoa(shard) }
func purchBucket(shard int) string { return bucketPurchases + strconv.Itoa(shard) }
func sellBucket(shard int) string  { return bucketSells + strconv.Itoa(shard) }

func (kp *kvPersister) SaveProfiles(shard int, profs []*profile.Profile) error {
	ops := make([]kvstore.Op, 0, len(profs))
	pending := 0
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		if err := kp.store.Apply(ops); err != nil {
			return err
		}
		ops, pending = ops[:0], 0
		return nil
	}
	for _, p := range profs {
		if strings.ContainsRune(p.UserID, 0) {
			return fmt.Errorf("%w: user %q", ErrBadKey, p.UserID)
		}
		data, err := p.Marshal()
		if err != nil {
			return fmt.Errorf("recommend: encoding profile %s: %w", p.UserID, err)
		}
		if pending+len(data) > saveProfilesChunk {
			if err := flush(); err != nil {
				return err
			}
		}
		ops = append(ops, kvstore.Op{Bucket: profBucket(shard), Key: p.UserID, Value: data})
		pending += len(data)
	}
	return flush()
}

func (kp *kvPersister) SavePurchase(userShard int, userID, productID string, sellShard int, total int64) error {
	if strings.ContainsRune(userID, 0) || strings.ContainsRune(productID, 0) {
		return fmt.Errorf("%w: purchase %q/%q", ErrBadKey, userID, productID)
	}
	return kp.store.Apply([]kvstore.Op{
		{Bucket: purchBucket(userShard), Key: userID + "\x00" + productID, Value: []byte{1}},
		{Bucket: sellBucket(sellShard), Key: productID, Value: []byte(strconv.FormatInt(total, 10))},
	})
}

func (kp *kvPersister) LoadShard(shard int) (ShardData, error) {
	data := ShardData{Purchases: make(map[string]map[string]bool)}
	profs, err := kp.store.Scan(profBucket(shard), "")
	if err != nil {
		return data, err
	}
	for _, ent := range profs {
		p, err := profile.Unmarshal(ent.Value)
		if err != nil {
			return data, fmt.Errorf("recommend: shard %d profile %s: %w", shard, ent.Key, err)
		}
		data.Profiles = append(data.Profiles, p)
	}
	purchs, err := kp.store.Scan(purchBucket(shard), "")
	if err != nil {
		return data, err
	}
	for _, ent := range purchs {
		user, product, ok := strings.Cut(ent.Key, "\x00")
		if !ok {
			return data, fmt.Errorf("recommend: shard %d malformed purchase key %q", shard, ent.Key)
		}
		set := data.Purchases[user]
		if set == nil {
			set = make(map[string]bool)
			data.Purchases[user] = set
		}
		set[product] = true
	}
	return data, nil
}

func (kp *kvPersister) LoadSells(shard int) (map[string]int64, error) {
	ents, err := kp.store.Scan(sellBucket(shard), "")
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(ents))
	for _, ent := range ents {
		total, err := strconv.ParseInt(string(ent.Value), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("recommend: sell shard %d count for %s: %w", shard, ent.Key, err)
		}
		out[ent.Key] = total
	}
	return out, nil
}

func (kp *kvPersister) ShardUsers(shard int) ([]string, error) {
	ents, err := kp.store.Scan(profBucket(shard), "")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ents))
	for i, ent := range ents {
		out[i] = ent.Key
	}
	return out, nil
}

func (kp *kvPersister) Compact() error { return kp.store.Compact() }

func (kp *kvPersister) Close() error { return kp.store.Close() }
