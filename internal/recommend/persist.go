package recommend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"agentrec/internal/kvstore"
	"agentrec/internal/profile"
)

// This file is the engine's durability layer. The paper's Buyer Agent
// Server holds every consumer's interest profile and purchase history; at
// production scale that community must survive a server restart and must
// not be forced to fit in memory. The engine therefore write-through
// journals every mutation to a Persister (one atomic batch per mutation),
// recovers the full community — profiles, purchase sets, sell counts, and
// the per-category candidate index — on construction, and can spill cold
// shards out of memory entirely: because every write is already durable,
// spilling is just dropping the maps, and fault-in is a bucket scan.
//
// See DESIGN.md "Durability" for the WAL layout and spill policy.

// Errors reported by the persistence layer.
var (
	ErrNoPersistence = errors.New("recommend: engine has no persistence configured")
	ErrBadKey        = errors.New("recommend: id contains NUL byte")
)

// ShardData is one community shard as recovered from a Persister: the
// shard's profiles, its consumers' purchase sets, and the sell counts
// *attributed to this shard* — how many times this shard's consumers bought
// each product. Attributing sells to the buyer's shard (rather than hashing
// by product) makes every shard's durable state self-contained, which is
// what lets a replica rebuild a shard from its owner's journal alone; the
// engine's served totals are the sum of all shards' attributions.
type ShardData struct {
	Profiles  []*profile.Profile
	Purchases map[string]map[string]bool // user -> product set
	Sells     map[string]int64           // product -> sales by this shard's users
}

// Persister journals community mutations durably and replays them on
// engine construction. Implementations must be safe for concurrent use;
// the engine guarantees that calls touching one shard's buckets are
// serialized by that shard's lock, so per-shard write order in the journal
// matches in-memory order.
type Persister interface {
	// SaveProfiles durably installs profiles into shard's bucket, as one
	// atomic batch. It is called before the in-memory install (journal
	// first), so a crash can lose an acknowledged write only if SaveProfiles
	// itself errored.
	SaveProfiles(shard int, profs []*profile.Profile) error
	// SavePurchase durably records userID buying productID together with
	// the product's new sell count attributed to the user's shard, as one
	// atomic batch.
	SavePurchase(shard int, userID, productID string, total int64) error
	// SaveShard durably replaces shard's entire state with data — the
	// replication snapshot catch-up path. Stale keys are removed; the write
	// need not be one atomic batch (a crash mid-replace is healed by the
	// next catch-up).
	SaveShard(shard int, data ShardData) error
	// LoadShard recovers one shard's profiles, purchase sets, and
	// shard-attributed sell counts.
	LoadShard(shard int) (ShardData, error)
	// ShardUsers lists the consumer ids stored in shard without loading
	// profiles, so Users/Stats can answer for spilled shards cheaply.
	ShardUsers(shard int) ([]string, error)
	// Compact rewrites the journal down to live state. Implementations
	// must be crash-safe: a crash mid-compaction may lose the compaction
	// but never acknowledged writes.
	Compact() error
	// SizeStats reports the journal's size accounting. The automatic
	// compaction policy (WithAutoCompaction) keys off it, so it is called
	// from write paths and must be cheap.
	SizeStats() (JournalStats, error)
	// Close flushes and releases the journal. Must be idempotent.
	Close() error
}

// JournalStats is a Persister's size accounting: how big the journal is
// now versus what it would shrink to if compacted.
type JournalStats struct {
	JournalBytes int64  // bytes in the append-only journal
	LiveBytes    int64  // bytes the journal would hold after a compaction
	Compactions  uint64 // successful compactions since the journal opened
}

// WithPersistence journals the engine's community to a WAL-backed kvstore
// under dir (created if absent) and recovers any existing state on
// construction. Engines with persistence must be built with Open, which
// can report recovery errors, and should be Closed.
func WithPersistence(dir string) Option {
	return func(e *Engine) { e.stateDir = dir }
}

// WithPersister uses a caller-supplied Persister instead of the kvstore
// one WithPersistence opens. Like WithPersistence it requires Open.
func WithPersister(p Persister) Option {
	return func(e *Engine) { e.persist = p }
}

// WithMaxResidentShards bounds how many community shards stay in memory at
// once (LRU by last access); the rest spill to the Persister and fault back
// in transparently on access. Only meaningful with persistence; n is
// clamped to at least 1. Zero (the default) keeps every shard resident.
func WithMaxResidentShards(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxResident = n
		}
	}
}

// spilling reports whether shards may leave memory.
func (e *Engine) spilling() bool {
	return e.persist != nil && e.maxResident > 0 && e.maxResident < e.nshards
}

// Err returns the sticky persistence error, if any: a fault-in failure on
// a read path that had no error return. Close surfaces it too.
func (e *Engine) Err() error {
	e.resMu.Lock()
	defer e.resMu.Unlock()
	return e.stickyErr
}

func (e *Engine) setErr(err error) {
	e.resMu.Lock()
	if e.stickyErr == nil {
		e.stickyErr = err
	}
	e.resMu.Unlock()
}

// Close releases the engine's Persister (a no-op for memory-only engines)
// and reports any sticky persistence error. It is idempotent. An in-flight
// background compaction is allowed to finish first — it is bounded by one
// journal rewrite — so Close never races the log swap.
func (e *Engine) Close() error {
	e.compactGate.Lock()
	e.compactClosed = true
	e.compactGate.Unlock()
	e.compactWG.Wait()
	var err error
	if e.persist != nil {
		err = e.persist.Close()
	}
	if serr := e.Err(); err == nil {
		err = serr
	}
	return err
}

// CompactState rewrites the persistence journal down to live state,
// shrinking a WAL that accumulated profile overwrites and replication
// catch-up rewrites. ErrNoPersistence for memory-only engines. Callers can
// invoke it manually at any time; WithAutoCompaction calls it from a
// background goroutine when the journal outgrows the live state
// (compact.go). Either path is counted in Stats.
func (e *Engine) CompactState() error {
	if e.persist == nil {
		return ErrNoPersistence
	}
	var before JournalStats
	if e.events != nil {
		before, _ = e.persist.SizeStats()
	}
	start := time.Now()
	if err := e.persist.Compact(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	e.compactions.Add(1)
	e.compactNanos.Store(elapsed.Nanoseconds())
	if e.events != nil {
		if after, err := e.persist.SizeStats(); err == nil {
			e.publishCompaction(elapsed, before, after)
		}
	}
	return nil
}

// --- residency: touch, fault-in, LRU eviction ---

// touch bumps the shard's LRU clock.
func (e *Engine) touch(sh *shard) {
	if e.spilling() {
		sh.lastAccess.Store(e.clock.Add(1))
	}
}

// lockResidentW acquires sh.mu for writing with the shard guaranteed
// resident, faulting it in from the Persister if it was spilled. The caller
// must Unlock and then call maybeEvict.
func (e *Engine) lockResidentW(sh *shard) error {
	sh.mu.Lock()
	if !sh.resident.Load() {
		if err := e.faultInLocked(sh); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	e.touch(sh)
	return nil
}

// faultInLocked reloads a spilled shard from the Persister. Caller holds
// sh.mu for writing. The candidate index is untouched: postings survive
// spilling, so they are already exact for the shard's durable state.
func (e *Engine) faultInLocked(sh *shard) error {
	data, err := e.persist.LoadShard(sh.id)
	if err != nil {
		return fmt.Errorf("recommend: faulting in shard %d: %w", sh.id, err)
	}
	sh.profiles = make(map[string]*stored, len(data.Profiles))
	for _, prof := range data.Profiles {
		sh.profiles[prof.UserID] = &stored{prof: prof, sum: prof.Summary()}
	}
	if data.Purchases == nil {
		data.Purchases = make(map[string]map[string]bool)
	}
	sh.purchases = data.Purchases
	if data.Sells == nil {
		data.Sells = make(map[string]int64)
	}
	sh.sells = data.Sells
	sh.gen.Add(1)
	sh.resident.Store(true)
	e.resMu.Lock()
	e.residentN++
	e.resMu.Unlock()
	return nil
}

// maybeEvict spills least-recently-accessed shards until the resident
// count is back under the cap. keep is the shard just served; it is never
// the victim. At most one shard lock is held at a time (lock order shard
// -> resMu, same as fault-in), so eviction can never deadlock with
// concurrent fault-ins.
func (e *Engine) maybeEvict(keep *shard) {
	if !e.spilling() {
		return
	}
	for {
		e.resMu.Lock()
		over := e.residentN > e.maxResident
		e.resMu.Unlock()
		if !over {
			return
		}
		var victim *shard
		var oldest uint64
		for _, sh := range e.shards {
			if sh == keep || !sh.resident.Load() {
				continue
			}
			if at := sh.lastAccess.Load(); victim == nil || at < oldest {
				victim, oldest = sh, at
			}
		}
		if victim == nil {
			return
		}
		victim.mu.Lock()
		if victim.resident.Load() {
			victim.profiles = nil
			victim.purchases = nil
			victim.sells = nil
			victim.resident.Store(false)
			victim.gen.Add(1) // invalidate any cached view
			victim.view.Store(nil)
			e.resMu.Lock()
			e.residentN--
			e.resMu.Unlock()
		}
		victim.mu.Unlock()
	}
}

// faultIn makes sh resident (no-op if it already is), then rebalances the
// resident set. Takes and releases sh.mu.
func (e *Engine) faultIn(sh *shard) error {
	sh.mu.Lock()
	if !sh.resident.Load() {
		if err := e.faultInLocked(sh); err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	e.touch(sh)
	sh.mu.Unlock()
	e.maybeEvict(sh)
	return nil
}

// residentView returns an immutable view of sh, faulting the shard in if
// it was spilled. Used by lazy Snapshots.
func (e *Engine) residentView(sh *shard) (*shardView, error) {
	for tries := 0; tries < 16; tries++ {
		if v := sh.snapshot(); v != nil {
			e.touch(sh)
			return v, nil
		}
		if err := e.faultIn(sh); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("recommend: shard %d thrashing between fault-in and eviction", sh.id)
}

// recover replays the Persister into the engine: postings for every
// consumer (the index is always fully resident), shard maps up to the
// resident cap, and the sell counters (each shard's attributed sells
// accumulate into the served per-product totals). Called by Open before the
// engine is shared, so no locks are needed.
func (e *Engine) recover() error {
	for _, sh := range e.shards {
		data, err := e.persist.LoadShard(sh.id)
		if err != nil {
			return fmt.Errorf("recommend: recovering shard %d: %w", sh.id, err)
		}
		keep := e.maxResident <= 0 || e.residentN < e.maxResident
		for _, prof := range data.Profiles {
			sum := prof.Summary()
			e.index.update(nil, sum)
			if keep {
				sh.profiles[prof.UserID] = &stored{prof: prof, sum: sum}
			}
		}
		for pid, total := range data.Sells {
			e.sellFor(pid).add(pid, total)
		}
		if keep {
			if data.Purchases != nil {
				sh.purchases = data.Purchases
			}
			if data.Sells != nil {
				sh.sells = data.Sells
			}
			e.residentN++
		} else {
			sh.profiles = nil
			sh.purchases = nil
			sh.sells = nil
			sh.resident.Store(false)
		}
	}
	return nil
}

// --- the kvstore-backed Persister ---

// Bucket scheme: one bucket per shard and kind, so recovery and fault-in
// are single ordered prefix scans and shard buckets never interleave. All
// three buckets for shard N are keyed by the *user* shard, so a shard's
// buckets are a self-contained, totally ordered change log — the unit the
// replication layer (replicate.go) ships between servers.
//
//	prof/<shard>  : <userID>                  -> profile JSON
//	purch/<shard> : <userID> \x00 <productID> -> 0x01
//	sell/<shard>  : <productID>               -> decimal sales by this shard's users
const (
	bucketProfiles  = "prof/"
	bucketPurchases = "purch/"
	bucketSells     = "sell/"
)

// CommunityWAL is the journal file name under a WithPersistence dir.
const CommunityWAL = "community.wal"

// kvPersister is the Persister WithPersistence opens: all shards share one
// kvstore.Store whose WAL provides atomic batches, torn-tail recovery, and
// its own synchronization.
type kvPersister struct {
	store *kvstore.Store
}

// OpenPersister opens (creating if needed) the kvstore-backed Persister
// rooted at dir. Exposed so tools can inspect or compact a community
// journal without building an Engine.
func OpenPersister(dir string) (Persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recommend: creating state dir: %w", err)
	}
	store, err := kvstore.Open(filepath.Join(dir, CommunityWAL))
	if err != nil {
		return nil, err
	}
	return &kvPersister{store: store}, nil
}

// saveProfilesChunk bounds one durable batch well under the kvstore record
// cap; a bulk install larger than this is split into several atomic
// batches (equivalent to a sequence of smaller SetProfiles calls).
const saveProfilesChunk = 4 << 20 // 4 MiB of encoded profiles

func profBucket(shard int) string  { return bucketProfiles + strconv.Itoa(shard) }
func purchBucket(shard int) string { return bucketPurchases + strconv.Itoa(shard) }
func sellBucket(shard int) string  { return bucketSells + strconv.Itoa(shard) }

func (kp *kvPersister) SaveProfiles(shard int, profs []*profile.Profile) error {
	ops := make([]kvstore.Op, 0, len(profs))
	pending := 0
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		if err := kp.store.Apply(ops); err != nil {
			return err
		}
		ops, pending = ops[:0], 0
		return nil
	}
	for _, p := range profs {
		if strings.ContainsRune(p.UserID, 0) {
			return fmt.Errorf("%w: user %q", ErrBadKey, p.UserID)
		}
		data, err := p.Marshal()
		if err != nil {
			return fmt.Errorf("recommend: encoding profile %s: %w", p.UserID, err)
		}
		if pending+len(data) > saveProfilesChunk {
			if err := flush(); err != nil {
				return err
			}
		}
		ops = append(ops, kvstore.Op{Bucket: profBucket(shard), Key: p.UserID, Value: data})
		pending += len(data)
	}
	return flush()
}

func (kp *kvPersister) SavePurchase(shard int, userID, productID string, total int64) error {
	if strings.ContainsRune(userID, 0) || strings.ContainsRune(productID, 0) {
		return fmt.Errorf("%w: purchase %q/%q", ErrBadKey, userID, productID)
	}
	return kp.store.Apply([]kvstore.Op{
		{Bucket: purchBucket(shard), Key: userID + "\x00" + productID, Value: []byte{1}},
		{Bucket: sellBucket(shard), Key: productID, Value: []byte(strconv.FormatInt(total, 10))},
	})
}

// SaveShard replaces the shard's three buckets with data: stale keys are
// deleted, live ones upserted, split into batches under the record cap.
// Within one SaveShard the deletes land first, so a crash mid-replace can
// only lose state the next snapshot catch-up rewrites anyway.
func (kp *kvPersister) SaveShard(shard int, data ShardData) error {
	var ops []kvstore.Op
	pending := 0
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		if err := kp.store.Apply(ops); err != nil {
			return err
		}
		ops, pending = ops[:0], 0
		return nil
	}
	add := func(op kvstore.Op, size int) error {
		if pending+size > saveProfilesChunk {
			if err := flush(); err != nil {
				return err
			}
		}
		ops = append(ops, op)
		pending += size
		return nil
	}

	// Deletes for keys the new state no longer has.
	live := make(map[string]map[string]bool, 3)
	live[profBucket(shard)] = make(map[string]bool, len(data.Profiles))
	for _, p := range data.Profiles {
		live[profBucket(shard)][p.UserID] = true
	}
	live[purchBucket(shard)] = make(map[string]bool)
	for user, set := range data.Purchases {
		for pid := range set {
			live[purchBucket(shard)][user+"\x00"+pid] = true
		}
	}
	live[sellBucket(shard)] = make(map[string]bool, len(data.Sells))
	for pid := range data.Sells {
		live[sellBucket(shard)][pid] = true
	}
	for bucket, keep := range live {
		ents, err := kp.store.Scan(bucket, "")
		if err != nil {
			return err
		}
		for _, ent := range ents {
			if !keep[ent.Key] {
				if err := add(kvstore.Op{Bucket: bucket, Key: ent.Key, Delete: true}, len(ent.Key)); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Upserts for the new state.
	for _, p := range data.Profiles {
		if strings.ContainsRune(p.UserID, 0) {
			return fmt.Errorf("%w: user %q", ErrBadKey, p.UserID)
		}
		enc, err := p.Marshal()
		if err != nil {
			return fmt.Errorf("recommend: encoding profile %s: %w", p.UserID, err)
		}
		if err := add(kvstore.Op{Bucket: profBucket(shard), Key: p.UserID, Value: enc}, len(enc)); err != nil {
			return err
		}
	}
	for user, set := range data.Purchases {
		for pid := range set {
			if strings.ContainsRune(user, 0) || strings.ContainsRune(pid, 0) {
				return fmt.Errorf("%w: purchase %q/%q", ErrBadKey, user, pid)
			}
			if err := add(kvstore.Op{Bucket: purchBucket(shard), Key: user + "\x00" + pid, Value: []byte{1}}, len(user)+len(pid)+1); err != nil {
				return err
			}
		}
	}
	for pid, total := range data.Sells {
		if strings.ContainsRune(pid, 0) {
			return fmt.Errorf("%w: product %q", ErrBadKey, pid)
		}
		if err := add(kvstore.Op{Bucket: sellBucket(shard), Key: pid, Value: []byte(strconv.FormatInt(total, 10))}, len(pid)+20); err != nil {
			return err
		}
	}
	return flush()
}

func (kp *kvPersister) LoadShard(shard int) (ShardData, error) {
	data := ShardData{
		Purchases: make(map[string]map[string]bool),
		Sells:     make(map[string]int64),
	}
	profs, err := kp.store.Scan(profBucket(shard), "")
	if err != nil {
		return data, err
	}
	for _, ent := range profs {
		p, err := profile.Unmarshal(ent.Value)
		if err != nil {
			return data, fmt.Errorf("recommend: shard %d profile %s: %w", shard, ent.Key, err)
		}
		data.Profiles = append(data.Profiles, p)
	}
	purchs, err := kp.store.Scan(purchBucket(shard), "")
	if err != nil {
		return data, err
	}
	for _, ent := range purchs {
		user, product, ok := strings.Cut(ent.Key, "\x00")
		if !ok {
			return data, fmt.Errorf("recommend: shard %d malformed purchase key %q", shard, ent.Key)
		}
		set := data.Purchases[user]
		if set == nil {
			set = make(map[string]bool)
			data.Purchases[user] = set
		}
		set[product] = true
	}
	sells, err := kp.store.Scan(sellBucket(shard), "")
	if err != nil {
		return data, err
	}
	for _, ent := range sells {
		total, err := strconv.ParseInt(string(ent.Value), 10, 64)
		if err != nil {
			return data, fmt.Errorf("recommend: shard %d sell count for %s: %w", shard, ent.Key, err)
		}
		data.Sells[ent.Key] = total
	}
	return data, nil
}

func (kp *kvPersister) ShardUsers(shard int) ([]string, error) {
	ents, err := kp.store.Scan(profBucket(shard), "")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ents))
	for i, ent := range ents {
		out[i] = ent.Key
	}
	return out, nil
}

func (kp *kvPersister) Compact() error { return kp.store.Compact() }

func (kp *kvPersister) SizeStats() (JournalStats, error) {
	st, err := kp.store.SizeStats()
	if err != nil {
		return JournalStats{}, err
	}
	return JournalStats{
		JournalBytes: st.JournalBytes,
		LiveBytes:    st.LiveBytes,
		Compactions:  st.Compactions,
	}, nil
}

func (kp *kvPersister) Close() error { return kp.store.Close() }
