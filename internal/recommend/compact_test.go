package recommend

// Automatic journal compaction tests: the manual-only path is unchanged,
// an auto-compacting engine keeps its WAL bounded by the policy ratio, and
// — the regression this exists for — a follower driven through repeated
// snapshot catch-ups plus sustained journal tailing no longer grows its
// WAL without bound, while still answering byte-identically.

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"agentrec/internal/kvstore"
)

// withinPolicy reports whether the engine's journal satisfies
// journal <= ratio x live.
func withinPolicy(st Stats, ratio float64) bool {
	return float64(st.JournalBytes) <= ratio*float64(st.LiveBytes)
}

func TestManualCompactionOnlyWithoutPolicy(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	e := loadEngineErr(t, u, profiles, WithPersistence(dir), WithNeighbors(8))
	defer e.Close()
	// Overwrite the whole community a few times: append-only journaling
	// must grow the WAL well past the live state, and without
	// WithAutoCompaction nothing may compact behind the caller's back.
	for round := 0; round < 3; round++ {
		for _, p := range profiles {
			if err := e.SetProfile(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := e.Stats()
	if st.Compactions != 0 {
		t.Fatalf("engine without a policy compacted %d times", st.Compactions)
	}
	if st.JournalBytes <= st.LiveBytes {
		t.Fatalf("journal %d not larger than live %d after overwrites", st.JournalBytes, st.LiveBytes)
	}
	if err := e.CompactState(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d after manual CompactState, want 1", st.Compactions)
	}
	if st.LastCompaction <= 0 {
		t.Errorf("LastCompaction = %v, want > 0", st.LastCompaction)
	}
	if st.JournalBytes != st.LiveBytes {
		t.Errorf("quiet engine after compaction: journal %d != live %d", st.JournalBytes, st.LiveBytes)
	}

	// The compacted journal still recovers the full community.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	mem := loadEngine(u, profiles, WithNeighbors(8))
	e2, err := Open(u.Catalog, WithPersistence(dir), WithNeighbors(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	communityEqual(t, mem, e2)
}

func TestAutoCompactionBoundsWAL(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	const ratio = 4
	e := loadEngineErr(t, u, profiles, WithPersistence(dir), WithNeighbors(8),
		WithAutoCompaction(CompactionPolicy{Ratio: ratio, MinBytes: 1, CheckEvery: 1}))
	defer e.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		// Keep overwriting: under sustained writes the policy must hold the
		// journal at or under ratio x live (compaction is asynchronous, so
		// observe across writes rather than after a single burst).
		for _, p := range profiles[:8] {
			if err := e.SetProfile(p); err != nil {
				t.Fatal(err)
			}
		}
		st := e.Stats()
		if st.Compactions >= 2 && withinPolicy(st, ratio) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never converged under policy: %+v", st)
		}
	}
	if err := e.Err(); err != nil {
		t.Fatalf("sticky error after auto compaction: %v", err)
	}
	// Answers are unaffected by background compactions.
	mem := loadEngine(u, profiles, WithNeighbors(8))
	communityEqual(t, mem, e)
}

// TestFollowerAutoCompactionBoundsWAL is the acceptance regression: two
// replicated servers, both persistent with a Ratio-4 policy, driven
// through >= 3 snapshot catch-ups per follower shard (tiny feed retention
// forces the wholesale SaveShard path) plus sustained live tailing. Every
// server's WAL must end bounded by the policy, and the replicas must still
// hold byte-identical live state and answer like an unreplicated
// reference.
func TestFollowerAutoCompactionBoundsWAL(t *testing.T) {
	u, profiles := soakUniverse(t)
	const ratio = 4
	const servers = 2
	dirs := []string{t.TempDir(), t.TempDir()}
	engines := make([]*Engine, servers)
	for i := range engines {
		e, err := Open(u.Catalog,
			// Retain only 4 journal records per shard: every burst below
			// overflows the tail, so followers catch up by snapshot.
			WithJournalFeed(4), WithNeighbors(8), WithShards(8),
			WithPersistence(dirs[i]),
			WithAutoCompaction(CompactionPolicy{Ratio: ratio, MinBytes: 1, CheckEvery: 1}))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	writers := make([]Writer, servers)
	peers := make([]Peer, servers)
	for i, e := range engines {
		writers[i] = e
		peers[i] = LocalPeer{Engine: e}
	}
	router, err := NewRouter(engines[0], 0, writers)
	if err != nil {
		t.Fatal(err)
	}
	repls := make([]*Replicator, servers)
	for i, e := range engines {
		if repls[i], err = NewReplicator(e, i, peers); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sync := func() {
		t.Helper()
		for _, r := range repls {
			if err := r.Sync(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Three full-community overwrite bursts, each synced: every burst puts
	// ~15 records into each shard's 4-record tail, so each sync is a
	// snapshot catch-up (a wholesale SaveShard rewrite on the follower).
	for round := 0; round < 3; round++ {
		if err := router.SetProfiles(profiles); err != nil {
			t.Fatal(err)
		}
		sync()
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := router.RecordPurchase(user, pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	sync()
	for i, r := range repls {
		var snaps, recs uint64
		for _, sh := range r.Stats().Shards {
			snaps += sh.Snapshots
			recs += sh.Records
		}
		if snaps < 3 {
			t.Fatalf("server %d saw %d snapshot catch-ups, want >= 3", i, snaps)
		}
		if recs == 0 {
			t.Fatalf("server %d applied no live-tail records", i)
		}
	}

	// Sustained live tailing: single-record writes synced one at a time
	// ride the retained tail instead of snapshots, and give the
	// asynchronous compactions write traffic to converge under.
	deadline := time.Now().Add(20 * time.Second)
	for {
		for _, p := range profiles[:2] {
			if err := router.SetProfile(p); err != nil {
				t.Fatal(err)
			}
		}
		sync()
		done := true
		for _, e := range engines {
			st := e.Stats()
			if st.Compactions == 0 || !withinPolicy(st, ratio) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i, e := range engines {
				t.Logf("server %d stats: %+v", i, e.Stats())
			}
			t.Fatal("follower WALs never converged under the Ratio-4 policy")
		}
	}

	// Replicas still answer byte-identically after compactions ran during
	// active replication.
	ref := loadEngine(u, profiles, WithNeighbors(8), WithShards(8))
	for _, e := range engines {
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		communityEqual(t, ref, e)
	}
	for _, e := range engines {
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	snap0, snap1 := walSnapshot(t, dirs[0]), walSnapshot(t, dirs[1])
	if len(snap0) == 0 {
		t.Fatal("empty WAL snapshot")
	}
	if !bytes.Equal(snap0, snap1) {
		t.Fatalf("WAL live states differ after compaction: %d vs %d bytes", len(snap0), len(snap1))
	}
	// And the final on-disk WALs obey the acceptance bound, re-measured
	// from a fresh open rather than the engines' own accounting.
	for i, dir := range dirs {
		store, err := kvstore.Open(filepath.Join(dir, CommunityWAL))
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.SizeStats()
		store.Close()
		if err != nil {
			t.Fatal(err)
		}
		if float64(st.JournalBytes) > ratio*float64(st.LiveBytes) {
			t.Errorf("server %d final WAL %d bytes > %d x live %d bytes",
				i, st.JournalBytes, ratio, st.LiveBytes)
		}
	}
}

// TestAutoCompactionRatioOneTerminates: a ratio at or below 1 means
// "compact whenever the journal exceeds the live state", not "compact in
// an infinite loop" — a freshly compacted journal (journal == live) must
// never re-fire the policy.
func TestAutoCompactionRatioOneTerminates(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := loadEngineErr(t, u, profiles[:20], WithPersistence(t.TempDir()), WithNeighbors(8),
		WithAutoCompaction(CompactionPolicy{Ratio: 1, MinBytes: 1, CheckEvery: 1}))
	defer e.Close()
	for i := 0; i < 30; i++ {
		if err := e.SetProfile(profiles[0]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ratio-1 policy never compacted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Quiesce: with no further writes the compaction count must stabilize
	// almost immediately. A runaway re-evaluation loop spins hundreds of
	// rewrites in this window.
	time.Sleep(50 * time.Millisecond)
	before := e.Stats().Compactions
	time.Sleep(200 * time.Millisecond)
	after := e.Stats().Compactions
	if after > before+1 {
		t.Fatalf("compaction loop did not terminate: %d -> %d in 200ms", before, after)
	}
}
