package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndEvents(t *testing.T) {
	r := New()
	r.Record("query", 1, "Buyer", "HttpA", "query request")
	r.Record("query", 2, "HttpA", "BSMA", "forward")

	got := r.Events()
	if len(got) != 2 {
		t.Fatalf("Events() len = %d, want 2", len(got))
	}
	if got[0].From != "Buyer" || got[0].To != "HttpA" || got[0].Step != 1 {
		t.Errorf("first event = %+v", got[0])
	}
	if got[1].Seq <= got[0].Seq {
		t.Errorf("Seq not monotonic: %d then %d", got[0].Seq, got[1].Seq)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record("query", 1, "a", "b", "x") // must not panic
	r.Reset()
	r.SetClock(nil)
	if r.Len() != 0 {
		t.Errorf("nil recorder Len = %d, want 0", r.Len())
	}
	if got := r.Events(); got != nil {
		t.Errorf("nil recorder Events = %v, want nil", got)
	}
}

func TestWorkflowFiltersAndSortsBySteps(t *testing.T) {
	r := New()
	// Steps recorded out of order, as concurrent agents would.
	r.Record("buy", 2, "HttpA", "BSMA", "forward")
	r.Record("query", 9, "MBA", "Marketplace", "search")
	r.Record("buy", 1, "Buyer", "HttpA", "buy request")
	r.Record("buy", 3, "BSMA", "BRA", "activate")

	got := r.Workflow("buy")
	if len(got) != 3 {
		t.Fatalf("Workflow(buy) len = %d, want 3", len(got))
	}
	for i, want := range []int{1, 2, 3} {
		if got[i].Step != want {
			t.Errorf("step[%d] = %d, want %d", i, got[i].Step, want)
		}
	}
}

func TestWorkflowStableWithinStep(t *testing.T) {
	r := New()
	r.Record("w", 1, "a", "b", "first")
	r.Record("w", 1, "c", "d", "second")
	got := r.Workflow("w")
	if got[0].Action != "first" || got[1].Action != "second" {
		t.Errorf("within-step order not stable: %v, %v", got[0], got[1])
	}
}

func TestVerifyExactMatch(t *testing.T) {
	r := New()
	r.Record("creation", 1, "Server", "CA", "request to be buyer agent server")
	r.Record("creation", 2, "CA", "BSMA", "create")
	err := r.Verify("creation", []Expectation{
		{Step: 1, From: "Server", To: "CA"},
		{Step: 2, From: "CA", To: "BSMA"},
	})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyLengthMismatch(t *testing.T) {
	r := New()
	r.Record("creation", 1, "Server", "CA", "request")
	err := r.Verify("creation", []Expectation{
		{Step: 1, From: "Server", To: "CA"},
		{Step: 2, From: "CA", To: "BSMA"},
	})
	if err == nil {
		t.Fatal("Verify accepted a short trace")
	}
	if !strings.Contains(err.Error(), "recorded 1 events") {
		t.Errorf("error %q does not name the count", err)
	}
}

func TestVerifyActorMismatch(t *testing.T) {
	r := New()
	r.Record("creation", 1, "Imposter", "CA", "request")
	err := r.Verify("creation", []Expectation{{Step: 1, From: "Server", To: "CA"}})
	if err == nil {
		t.Fatal("Verify accepted wrong actor")
	}
	if !strings.Contains(err.Error(), "Imposter") {
		t.Errorf("error %q does not name the offending actor", err)
	}
}

func TestVerifyStepGap(t *testing.T) {
	r := New()
	r.Record("w", 1, "a", "b", "x")
	r.Record("w", 3, "b", "c", "y") // step 2 missing
	err := r.Verify("w", []Expectation{
		{Step: 1, From: "a", To: "b"},
		{Step: 2, From: "b", To: "c"},
	})
	if err == nil {
		t.Fatal("Verify accepted a step gap")
	}
}

func TestResetClearsEventsAndSeq(t *testing.T) {
	r := New()
	r.Record("w", 1, "a", "b", "x")
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	r.Record("w", 1, "a", "b", "x")
	if got := r.Events(); got[0].Seq != 1 {
		t.Errorf("Seq after Reset = %d, want 1", got[0].Seq)
	}
}

func TestSetClock(t *testing.T) {
	r := New()
	fixed := time.Date(2004, 3, 29, 0, 0, 0, 0, time.UTC) // AINA'04
	r.SetClock(func() time.Time { return fixed })
	r.Record("w", 1, "a", "b", "x")
	if got := r.Events()[0].At; !got.Equal(fixed) {
		t.Errorf("At = %v, want %v", got, fixed)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Workflow: "query", Step: 7, From: "BRA", To: "MBA", Action: "dispatch"}
	want := "query[7] BRA->MBA: dispatch"
	if e.String() != want {
		t.Errorf("String() = %q, want %q", e.String(), want)
	}
}

func TestTranscript(t *testing.T) {
	r := New()
	r.Record("w", 2, "b", "c", "y")
	r.Record("w", 1, "a", "b", "x")
	got := r.Transcript("w")
	want := "w[1] a->b: x\nw[2] b->c: y\n"
	if got != want {
		t.Errorf("Transcript = %q, want %q", got, want)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New()
	const goroutines, perG = 16, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record("w", i, "a", "b", "x")
			}
		}()
	}
	wg.Wait()
	if r.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", r.Len(), goroutines*perG)
	}
	// All Seq values must be distinct.
	seen := make(map[uint64]bool, r.Len())
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
