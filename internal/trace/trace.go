// Package trace records step-numbered workflow events so that the agent
// workflows of the paper (Figs 4.1, 4.2 and 4.3) can be checked for exact
// conformance: every numbered arrow in a figure becomes one Event, and tests
// assert that the recorded sequence matches the figure.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one numbered arrow in a workflow figure: actor From performs
// Action toward actor To as step Step of workflow Workflow.
type Event struct {
	Workflow string    // e.g. "query" (Fig 4.2), "buy" (Fig 4.3), "creation" (Fig 4.1)
	Step     int       // the figure's arrow number, 1-based
	From     string    // acting component, e.g. "Buyer", "HttpA", "BRA", "MBA"
	To       string    // receiving component, e.g. "BSMA", "UserDB", "Marketplace"
	Action   string    // short verb phrase, e.g. "query request"
	At       time.Time // wall-clock time the event was recorded
	Seq      uint64    // global record order, assigned by the Recorder
}

// String renders the event in the compact "workflow[step] from->to: action"
// form used by failure messages and the platformd -trace flag.
func (e Event) String() string {
	return fmt.Sprintf("%s[%d] %s->%s: %s", e.Workflow, e.Step, e.From, e.To, e.Action)
}

// Recorder collects events from concurrently running agents. The zero value
// is ready to use. A nil *Recorder is valid everywhere and records nothing,
// so components can carry an optional tracer without nil checks.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
	clock  func() time.Time
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// SetClock replaces the wall clock, for deterministic tests. A nil clock
// restores time.Now.
func (r *Recorder) SetClock(clock func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
}

// Record appends one event. It is safe for concurrent use and is a no-op on
// a nil Recorder.
func (r *Recorder) Record(workflow string, step int, from, to, action string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now
	if r.clock != nil {
		now = r.clock
	}
	r.seq++
	r.events = append(r.events, Event{
		Workflow: workflow,
		Step:     step,
		From:     from,
		To:       to,
		Action:   action,
		At:       now(),
		Seq:      r.seq,
	})
}

// Events returns a copy of every recorded event in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Workflow returns the events of one workflow, ordered by step number and,
// within a step, by record order. Workflows driven by concurrent agents may
// record steps slightly out of arrival order; ordering by the figure's step
// number is what conformance checks care about.
func (r *Recorder) Workflow(name string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Workflow == name {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
	r.seq = 0
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Transcript renders the events of one workflow, one per line, in step order.
func (r *Recorder) Transcript(workflow string) string {
	var b strings.Builder
	for _, e := range r.Workflow(workflow) {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Expectation is one required step of a workflow figure.
type Expectation struct {
	Step int
	From string
	To   string
}

// Verify checks that workflow's recorded events contain exactly the expected
// step sequence: every expected step present, with matching From/To actors,
// steps strictly covering 1..len(expected) with no gaps, duplicates allowed
// only when the figure itself repeats a step number (same step listed twice).
// It returns a descriptive error naming the first mismatch.
func (r *Recorder) Verify(workflow string, expected []Expectation) error {
	got := r.Workflow(workflow)
	if len(got) != len(expected) {
		return fmt.Errorf("trace: workflow %q recorded %d events, figure has %d:\n%s",
			workflow, len(got), len(expected), r.Transcript(workflow))
	}
	for i, want := range expected {
		e := got[i]
		if e.Step != want.Step || e.From != want.From || e.To != want.To {
			return fmt.Errorf("trace: workflow %q event %d = %s, want step %d %s->%s",
				workflow, i, e, want.Step, want.From, want.To)
		}
	}
	return nil
}
