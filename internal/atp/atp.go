// Package atp implements the Agent Transfer Protocol: the network transport
// that moves aglet images and messages between hosts in different processes,
// standing in for the Aglets ATP layer the paper's platform uses (§2.1).
//
// Wire format: each request and response is a 4-byte big-endian length
// followed by a JSON body. Every request carries an HMAC-SHA256 signature
// over its canonical payload, so a host only accepts agents and messages
// from peers holding the shared platform key — the "comprehensive and simple"
// security goal the Aglets design states.
//
// One request is exchanged per connection. That matches the paper's traffic
// pattern (an agent dispatch or a single query), keeps the protocol trivially
// robust, and makes the byte accounting used by experiment C2 exact.
package atp

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/security"
)

// Errors reported by the protocol layer.
var (
	ErrFrameTooLarge = errors.New("atp: frame exceeds limit")
	ErrBadFrame      = errors.New("atp: malformed frame")
	ErrRejected      = errors.New("atp: peer rejected request")
)

// MaxFrame bounds a single frame; a migrating agent image comfortably fits.
const MaxFrame = 16 << 20

// request operations.
const (
	opDispatch = "dispatch"
	opCall     = "call"
	opRetract  = "retract"
	opPing     = "ping"
	opJournal  = "journal"
)

type request struct {
	Op      string       `json:"op"`
	Image   *aglet.Image `json:"image,omitempty"`
	AgentID string       `json:"agent_id,omitempty"`
	Kind    string       `json:"kind,omitempty"`
	Data    []byte       `json:"data,omitempty"`
	Sig     []byte       `json:"sig"`
}

type response struct {
	OK    bool         `json:"ok"`
	Error string       `json:"error,omitempty"`
	Kind  string       `json:"kind,omitempty"`
	Data  []byte       `json:"data,omitempty"`
	Image *aglet.Image `json:"image,omitempty"`
}

// signable returns the canonical bytes covered by the signature: the JSON
// encoding of the request with Sig nil.
func (r request) signable() ([]byte, error) {
	r.Sig = nil
	return json.Marshal(r)
}

func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("atp: encoding frame: %w", err)
	}
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("atp: writing frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("atp: writing frame body: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return nil
}

// JournalHandler serves engine journal-stream frames: kind names the
// sub-operation (e.g. "tail", "set-profiles", "purchase" — see
// internal/replnet) and data/reply are opaque JSON payloads, keeping the
// transport decoupled from the recommendation engine's types.
type JournalHandler func(kind string, data []byte) ([]byte, error)

// Server accepts ATP connections for one aglet host. Construct with Serve;
// Close stops accepting and waits for in-flight connections.
type Server struct {
	host     *aglet.Host
	signer   *security.Signer
	listener net.Listener

	mu      sync.Mutex
	closed  bool
	journal JournalHandler
	wg      sync.WaitGroup
}

// Serve starts an ATP server for host on addr (e.g. "127.0.0.1:0"). The
// server verifies request signatures with signer.
func Serve(host *aglet.Host, signer *security.Signer, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("atp: listening on %s: %w", addr, err)
	}
	s := &Server{host: host, signer: signer, listener: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address, the string peers dial.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// SetJournalHandler installs (or replaces) the handler for journal frames.
// Without one the server rejects them — hosts that do not replicate an
// engine expose no journal surface.
func (s *Server) SetJournalHandler(h JournalHandler) {
	s.mu.Lock()
	s.journal = h
	s.mu.Unlock()
}

func (s *Server) journalHandler() JournalHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	var req request
	if err := readFrame(conn, &req); err != nil {
		writeFrame(conn, response{Error: err.Error()})
		return
	}
	payload, err := req.signable()
	if err != nil {
		writeFrame(conn, response{Error: err.Error()})
		return
	}
	if err := s.signer.Verify(payload, req.Sig); err != nil {
		writeFrame(conn, response{Error: "signature rejected"})
		return
	}
	switch req.Op {
	case opPing:
		writeFrame(conn, response{OK: true})
	case opDispatch:
		if req.Image == nil {
			writeFrame(conn, response{Error: "dispatch without image"})
			return
		}
		if err := s.host.Receive(*req.Image); err != nil {
			writeFrame(conn, response{Error: err.Error()})
			return
		}
		writeFrame(conn, response{OK: true})
	case opRetract:
		img, err := s.host.Surrender(req.AgentID)
		if err != nil {
			writeFrame(conn, response{Error: err.Error()})
			return
		}
		writeFrame(conn, response{OK: true, Image: &img})
	case opCall:
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
		defer cancel()
		reply, err := s.host.Send(ctx, req.AgentID, aglet.Message{Kind: req.Kind, Data: req.Data})
		if err != nil {
			writeFrame(conn, response{Error: err.Error()})
			return
		}
		writeFrame(conn, response{OK: true, Kind: reply.Kind, Data: reply.Data})
	case opJournal:
		h := s.journalHandler()
		if h == nil {
			writeFrame(conn, response{Error: "no journal handler"})
			return
		}
		out, err := h(req.Kind, req.Data)
		if err != nil {
			writeFrame(conn, response{Error: err.Error()})
			return
		}
		writeFrame(conn, response{OK: true, Kind: req.Kind, Data: out})
	default:
		writeFrame(conn, response{Error: "unknown op"})
	}
}

// Close stops the server and waits for active connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Client implements aglet.Transport over TCP. Destination host names are
// dial addresses ("ip:port"). The zero value is unusable; use NewClient.
type Client struct {
	signer  *security.Signer
	dialer  net.Dialer
	timeout time.Duration

	statsMu    sync.Mutex
	dispatches int
	calls      int
	journals   int
	bytesSent  int64
}

// NewClient returns a transport client signing requests with signer.
func NewClient(signer *security.Signer) *Client {
	return &Client{signer: signer, timeout: 30 * time.Second}
}

func (c *Client) roundTrip(ctx context.Context, dest string, req request) (response, error) {
	payload, err := req.signable()
	if err != nil {
		return response{}, err
	}
	req.Sig = c.signer.Sign(payload)

	conn, err := c.dialer.DialContext(ctx, "tcp", dest)
	if err != nil {
		return response{}, fmt.Errorf("atp: dialing %s: %w", dest, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	} else {
		conn.SetDeadline(time.Now().Add(c.timeout))
	}

	if err := writeFrame(conn, req); err != nil {
		return response{}, err
	}
	var resp response
	if err := readFrame(conn, &resp); err != nil {
		return response{}, fmt.Errorf("atp: reading response from %s: %w", dest, err)
	}
	if !resp.OK {
		return response{}, fmt.Errorf("%w: %s", ErrRejected, resp.Error)
	}

	c.statsMu.Lock()
	switch req.Op {
	case opDispatch:
		c.dispatches++
		if req.Image != nil {
			c.bytesSent += int64(len(req.Image.State))
		}
	case opCall:
		c.calls++
		c.bytesSent += int64(len(req.Data) + len(resp.Data))
	case opJournal:
		c.journals++
		c.bytesSent += int64(len(req.Data) + len(resp.Data))
	}
	c.statsMu.Unlock()
	return resp, nil
}

// Dispatch implements aglet.Transport.
func (c *Client) Dispatch(ctx context.Context, dest string, img aglet.Image) error {
	_, err := c.roundTrip(ctx, dest, request{Op: opDispatch, Image: &img})
	return err
}

// Call implements aglet.Transport.
func (c *Client) Call(ctx context.Context, dest, agentID string, msg aglet.Message) (aglet.Message, error) {
	resp, err := c.roundTrip(ctx, dest, request{Op: opCall, AgentID: agentID, Kind: msg.Kind, Data: msg.Data})
	if err != nil {
		return aglet.Message{}, err
	}
	return aglet.Message{Kind: resp.Kind, Data: resp.Data}, nil
}

// Retract implements aglet.Transport: it asks dest to surrender agentID.
func (c *Client) Retract(ctx context.Context, dest, agentID string) (aglet.Image, error) {
	resp, err := c.roundTrip(ctx, dest, request{Op: opRetract, AgentID: agentID})
	if err != nil {
		return aglet.Image{}, err
	}
	if resp.Image == nil {
		return aglet.Image{}, fmt.Errorf("%w: retract returned no image", ErrBadFrame)
	}
	return *resp.Image, nil
}

// Ping checks liveness of the ATP server at dest.
func (c *Client) Ping(ctx context.Context, dest string) error {
	_, err := c.roundTrip(ctx, dest, request{Op: opPing})
	return err
}

// Journal exchanges one engine journal-stream frame with dest: kind names
// the sub-operation and data carries its payload, both opaque to the
// transport. The reply payload is returned. Dest must have a
// JournalHandler installed.
func (c *Client) Journal(ctx context.Context, dest, kind string, data []byte) ([]byte, error) {
	resp, err := c.roundTrip(ctx, dest, request{Op: opJournal, Kind: kind, Data: data})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Stats reports dispatches, calls and payload bytes sent since construction.
func (c *Client) Stats() (dispatches, calls int, bytesSent int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.dispatches, c.calls, c.bytesSent
}

var _ aglet.Transport = (*Client)(nil)
