package atp

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/security"
)

// counterAgent counts handled messages in its serialized state.
type counterAgent struct {
	aglet.Base
	mu sync.Mutex
	N  int
}

func (a *counterAgent) HandleMessage(_ *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	a.mu.Lock()
	a.N++
	n := a.N
	a.mu.Unlock()
	data, _ := json.Marshal(map[string]int{"n": n})
	return aglet.Message{Kind: "count", Data: data}, nil
}

func (a *counterAgent) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return json.Marshal(map[string]int{"n": a.N})
}

func (a *counterAgent) SetState(data []byte) error {
	var s map[string]int
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	a.mu.Lock()
	a.N = s["n"]
	a.mu.Unlock()
	return nil
}

func reg() *aglet.Registry {
	r := aglet.NewRegistry()
	r.Register("counter", func() aglet.Aglet { return &counterAgent{} })
	return r
}

func key() *security.Signer { return security.NewSigner([]byte("shared-platform-key")) }

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// startHost brings up a host with an ATP server and returns both.
func startHost(t *testing.T, name string) (*aglet.Host, *Server) {
	t.Helper()
	h := aglet.NewHost(name, reg())
	srv, err := Serve(h, key(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return h, srv
}

func TestPing(t *testing.T) {
	_, srv := startHost(t, "h1")
	c := NewClient(key())
	if err := c.Ping(testCtx(t), srv.Addr()); err != nil {
		t.Fatal(err)
	}
}

func TestCallOverTCP(t *testing.T) {
	h2, srv := startHost(t, "h2")
	h2.Create("counter", "a1", nil)

	c := NewClient(key())
	reply, err := c.Call(testCtx(t), srv.Addr(), "a1", aglet.Message{Kind: "inc"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != "count" || !strings.Contains(string(reply.Data), `"n":1`) {
		t.Errorf("reply = %+v", reply)
	}
}

func TestDispatchOverTCP(t *testing.T) {
	client := NewClient(key())
	// h1 is wired to the network: its transport dials real TCP addresses.
	h1 := aglet.NewHost("h1", reg(), aglet.WithTransport(client))
	defer h1.Close()
	h2, srv := startHost(t, "h2")

	h1.Create("counter", "mover", nil)
	// Bump the counter so we can prove state travelled.
	if _, err := h1.Send(testCtx(t), "mover", aglet.Message{}); err != nil {
		t.Fatal(err)
	}
	if err := h1.Dispatch(testCtx(t), "mover", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	if h1.Has("mover") {
		t.Error("agent still on origin after dispatch")
	}
	if !h2.Has("mover") {
		t.Fatal("agent did not arrive")
	}
	reply, err := h2.Send(testCtx(t), "mover", aglet.Message{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reply.Data), `"n":2`) {
		t.Errorf("state lost in flight: %s", reply.Data)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	h2, srv := startHost(t, "h2")
	h2.Create("counter", "a1", nil)

	c := NewClient(security.NewSigner([]byte("wrong-key")))
	_, err := c.Call(testCtx(t), srv.Addr(), "a1", aglet.Message{})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if !strings.Contains(err.Error(), "signature") {
		t.Errorf("err %q should mention signature", err)
	}
}

func TestCallMissingAgent(t *testing.T) {
	_, srv := startHost(t, "h2")
	c := NewClient(key())
	_, err := c.Call(testCtx(t), srv.Addr(), "ghost", aglet.Message{})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestDispatchUnknownType(t *testing.T) {
	_, srv := startHost(t, "h2")
	c := NewClient(key())
	err := c.Dispatch(testCtx(t), srv.Addr(), aglet.Image{Type: "alien", ID: "x"})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestDialFailure(t *testing.T) {
	c := NewClient(key())
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	// Port 1 on localhost is almost certainly closed.
	if err := c.Ping(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("Ping to closed port succeeded")
	}
}

func TestGarbageFrameHandled(t *testing.T) {
	_, srv := startHost(t, "h2")
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid length prefix, invalid JSON.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 7)
	conn.Write(hdr[:])
	conn.Write([]byte("garbage"))
	// The server must reply with an error frame rather than hang or crash.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := readFrame(conn, &resp); err != nil {
		t.Fatalf("no error frame: %v", err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("resp = %+v, want error", resp)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	_, srv := startHost(t, "h2")
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	conn.Write(hdr[:])
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := readFrame(conn, &resp); err != nil {
		t.Fatalf("no error frame: %v", err)
	}
	if resp.OK {
		t.Error("oversize frame accepted")
	}
}

func TestServerCloseIdempotentAndStopsAccepting(t *testing.T) {
	_, srv := startHost(t, "h2")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c := NewClient(key())
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := c.Ping(ctx, srv.Addr()); err == nil {
		t.Fatal("Ping succeeded after Close")
	}
}

func TestClientStats(t *testing.T) {
	h2, srv := startHost(t, "h2")
	h2.Create("counter", "a1", nil)
	c := NewClient(key())
	c.Call(testCtx(t), srv.Addr(), "a1", aglet.Message{Data: []byte("xxxx")})
	c.Dispatch(testCtx(t), srv.Addr(), aglet.Image{Type: "counter", ID: "fresh", State: []byte(`{"n":5}`)})

	d, calls, bytes := c.Stats()
	if d != 1 || calls != 1 {
		t.Errorf("Stats = %d dispatches, %d calls", d, calls)
	}
	if bytes <= 0 {
		t.Errorf("bytesSent = %d", bytes)
	}
}

func TestConcurrentCalls(t *testing.T) {
	h2, srv := startHost(t, "h2")
	h2.Create("counter", "a1", nil)
	c := NewClient(key())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(testCtx(t), srv.Addr(), "a1", aglet.Message{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	reply, _ := c.Call(testCtx(t), srv.Addr(), "a1", aglet.Message{})
	if !strings.Contains(string(reply.Data), `"n":33`) {
		t.Errorf("final count = %s, want 33", reply.Data)
	}
}

func TestRetractOverTCP(t *testing.T) {
	client := NewClient(key())
	h1 := aglet.NewHost("h1", reg(), aglet.WithTransport(client))
	defer h1.Close()
	h2, srv := startHost(t, "h2")

	h2.Create("counter", "roamer", nil)
	h2.Send(testCtx(t), "roamer", aglet.Message{}) // N=1

	if err := h1.Retract(testCtx(t), srv.Addr(), "roamer"); err != nil {
		t.Fatal(err)
	}
	if h2.Has("roamer") {
		t.Error("agent still on remote host")
	}
	reply, err := h1.Send(testCtx(t), "roamer", aglet.Message{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reply.Data), `"n":2`) {
		t.Errorf("state lost over TCP retract: %s", reply.Data)
	}
}

func TestRetractMissingOverTCP(t *testing.T) {
	client := NewClient(key())
	h1 := aglet.NewHost("h1", reg(), aglet.WithTransport(client))
	defer h1.Close()
	_, srv := startHost(t, "h2")
	if err := h1.Retract(testCtx(t), srv.Addr(), "ghost"); err == nil {
		t.Fatal("retract of missing agent succeeded")
	}
}

// TestJournalFrame exercises the engine journal-stream op: a handler
// echoes, the client round-trips kind and payload, and a host with no
// handler rejects.
func TestJournalFrame(t *testing.T) {
	_, srv := startHost(t, "hj")
	srv.SetJournalHandler(func(kind string, data []byte) ([]byte, error) {
		if kind == "boom" {
			return nil, errors.New("handler exploded")
		}
		return append([]byte(kind+":"), data...), nil
	})

	c := NewClient(key())
	out, err := c.Journal(testCtx(t), srv.Addr(), "tail", []byte(`{"shard":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(out), `tail:{"shard":3}`; got != want {
		t.Fatalf("journal reply = %q, want %q", got, want)
	}
	if _, err := c.Journal(testCtx(t), srv.Addr(), "boom", nil); err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("handler error not surfaced: %v", err)
	}

	// A host without a journal handler rejects the frame.
	_, bare := startHost(t, "hj2")
	if _, err := c.Journal(testCtx(t), bare.Addr(), "tail", nil); err == nil || !strings.Contains(err.Error(), "no journal handler") {
		t.Fatalf("bare host accepted journal frame: %v", err)
	}
}

// TestJournalFrameSigned pins that journal frames are under the same HMAC
// gate as agent traffic: a client with the wrong platform key is rejected.
func TestJournalFrameSigned(t *testing.T) {
	_, srv := startHost(t, "hjs")
	srv.SetJournalHandler(func(string, []byte) ([]byte, error) { return nil, nil })
	bad := NewClient(security.NewSigner([]byte("not-the-platform-key")))
	if _, err := bad.Journal(testCtx(t), srv.Addr(), "tail", nil); err == nil || !strings.Contains(err.Error(), "signature rejected") {
		t.Fatalf("wrong-key journal frame not rejected: %v", err)
	}
}
