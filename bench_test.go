package agentrec

// The benchmark suite regenerates the performance side of every experiment
// in EXPERIMENTS.md (run with `go test -bench=. -benchmem`). Each benchmark
// names the DESIGN.md experiment it belongs to.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/kvstore"
	"agentrec/internal/marketplace"
	"agentrec/internal/platform"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/similarity"
	"agentrec/internal/workload"
)

// --- F4.4: profile update rule ----------------------------------------------

func BenchmarkProfileUpdate(b *testing.B) {
	p := profile.NewProfile("u")
	ev := profile.Evidence{
		Category:    "laptop",
		Terms:       map[string]float64{"ssd": 1, "light": 0.8, "gpu": 0.3, "screen": 0.5},
		SubCategory: "notebook",
		SubTerms:    map[string]float64{"13inch": 1, "carbon": 0.4},
		Behaviour:   profile.BehaviourBuy,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Observe(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileVector(b *testing.B) {
	u, err := workload.Generate(workload.Config{Seed: 9, Users: 1, Products: 300, RelevantPerUser: 40})
	if err != nil {
		b.Fatal(err)
	}
	p, err := u.BuildProfile(u.Users[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := p.Vector(); len(v) == 0 {
			b.Fatal("empty vector")
		}
	}
}

// --- F4.5: similarity --------------------------------------------------------

func benchProfiles(b *testing.B) (*profile.Profile, *profile.Profile) {
	b.Helper()
	u, err := workload.Generate(workload.Config{Seed: 11, Users: 2, Products: 300, RelevantPerUser: 30})
	if err != nil {
		b.Fatal(err)
	}
	p1, err := u.BuildProfile(u.Users[0])
	if err != nil {
		b.Fatal(err)
	}
	p2, err := u.BuildProfile(u.Users[1])
	if err != nil {
		b.Fatal(err)
	}
	return p1, p2
}

func BenchmarkSimilarityPaper(b *testing.B) {
	p1, p2 := benchProfiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.PaperSimilarity(p1, p2, "cat00", 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimilarityCosine(b *testing.B) {
	p1, p2 := benchProfiles(b)
	v1, v2 := p1.Vector(), p2.Vector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.Cosine(v1, v2)
	}
}

func BenchmarkSimilarityPearson(b *testing.B) {
	p1, p2 := benchProfiles(b)
	v1, v2 := p1.Vector(), p2.Vector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.Pearson(v1, v2)
	}
}

// --- C5/C4: recommendation strategies ----------------------------------------

func benchEngine(b *testing.B, users, products int) (*recommend.Engine, *workload.Universe) {
	b.Helper()
	u, err := workload.Generate(workload.Config{
		Seed: 13, Users: users, Products: products, Categories: 8, RelevantPerUser: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := recommend.NewEngine(u.Catalog, recommend.WithNeighbors(10))
	for _, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			b.Fatal(err)
		}
		e.SetProfile(p)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			e.RecordPurchase(user, pid)
		}
	}
	return e, u
}

func BenchmarkRecommenders(b *testing.B) {
	e, u := benchEngine(b, 200, 500)
	for _, s := range []recommend.Strategy{
		recommend.StrategyCF, recommend.StrategyIF, recommend.StrategyHybrid, recommend.StrategyTopSeller,
	} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				user := u.Users[i%len(u.Users)].ID
				if _, err := e.Recommend(s, user, "", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecommenderCommunitySize(b *testing.B) {
	for _, users := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			e, u := benchEngine(b, users, 500)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				user := u.Users[i%len(u.Users)].ID
				if _, err := e.Recommend(recommend.StrategyCF, user, "", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecommendParallel measures recommendation throughput under
// parallel load over a large community: every goroutine issues CF
// recommendations for a rotating set of consumers. This is the scaling
// experiment for the sharded engine — per-shard locks plus the per-category
// candidate index must let parallel requests proceed without serializing on
// one engine-wide mutex or rescanning the whole community per request.
func BenchmarkRecommendParallel(b *testing.B) {
	e, u := benchEngineSized(b, 10000, 2000, 32)
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			user := u.Users[int(next.Add(1))%len(u.Users)].ID
			if _, err := e.Recommend(recommend.StrategyCF, user, "", 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecommendParallelMixed interleaves reads with profile and
// purchase writes (2 writes per 8 operations: one SetProfile, one
// RecordPurchase), the contention profile of a live platform where Profile
// Agents update while Buyer Recommend Agents read.
func BenchmarkRecommendParallelMixed(b *testing.B) {
	e, u := benchEngineSized(b, 10000, 2000, 32)
	profiles := make([]*profile.Profile, len(u.Users))
	for i, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			b.Fatal(err)
		}
		profiles[i] = p
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			usr := u.Users[i%len(u.Users)]
			switch i % 8 {
			case 3:
				e.SetProfile(profiles[i%len(profiles)])
			case 6:
				e.RecordPurchase(usr.ID, usr.Held[i%len(usr.Held)])
			default:
				if _, err := e.Recommend(recommend.StrategyCF, usr.ID, "", 10); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkRecommendPersistent is BenchmarkRecommendParallel against a
// WAL-journaled engine: the community is installed write-through (bulk
// SetProfiles + journaled purchases), then parallel CF reads run. Reads
// never touch the journal, so throughput must stay within ~2x of the
// in-memory engine — the acceptance gate for the persistence layer.
func BenchmarkRecommendPersistent(b *testing.B) {
	u, err := workload.Generate(workload.Config{
		Seed: 17, Users: 10000, Products: 2000, Categories: 32, RelevantPerUser: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := recommend.Open(u.Catalog,
		recommend.WithNeighbors(10), recommend.WithPersistence(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	profiles := make([]*profile.Profile, len(u.Users))
	for i, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			b.Fatal(err)
		}
		profiles[i] = p
	}
	if err := e.SetProfiles(profiles); err != nil {
		b.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := e.RecordPurchase(user, pid); err != nil {
				b.Fatal(err)
			}
		}
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			user := u.Users[int(next.Add(1))%len(u.Users)].ID
			if _, err := e.Recommend(recommend.StrategyCF, user, "", 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchEngineSized(b *testing.B, users, products, categories int) (*recommend.Engine, *workload.Universe) {
	b.Helper()
	u, err := workload.Generate(workload.Config{
		Seed: 17, Users: users, Products: products, Categories: categories, RelevantPerUser: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := recommend.NewEngine(u.Catalog, recommend.WithNeighbors(10))
	for _, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			b.Fatal(err)
		}
		e.SetProfile(p)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			e.RecordPurchase(user, pid)
		}
	}
	return e, u
}

// --- workflow benchmarks (F4.1, F4.2, F4.3, C1, C6, C7) -----------------------

func benchPlatform(b *testing.B, markets int) *platform.Platform {
	b.Helper()
	var products []*catalog.Product
	for i := 0; i < markets; i++ {
		products = append(products, &catalog.Product{
			ID: fmt.Sprintf("p%d", i), Name: "P", Category: "laptop",
			Terms: map[string]float64{"ssd": 1}, PriceCents: 100000,
			SellerID: "s", Stock: 1 << 30,
		})
	}
	p, err := platform.New(platform.Config{Marketplaces: markets, Products: products})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

func benchConsumer(b *testing.B, p *platform.Platform, id string) {
	b.Helper()
	ctx := context.Background()
	if err := p.Buyer().Register(ctx, id); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Buyer().Login(ctx, id); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCreationWorkflow measures Fig 4.1: coordinator admission, BSMA
// dispatch, and mechanism setup, per buyer server created.
func BenchmarkCreationWorkflow(b *testing.B) {
	lb := aglet.NewLoopback()
	coordReg := aglet.NewRegistry()
	coordHost := aglet.NewHost("coord", coordReg)
	lb.Attach(coordHost)
	defer coordHost.Close()
	if _, err := coordinator.New(coordHost, coordReg); err != nil {
		b.Fatal(err)
	}
	union := catalog.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := aglet.NewRegistry()
		host := aglet.NewHost(fmt.Sprintf("buyer-%d", i), reg)
		lb.Attach(host)
		engine := recommend.NewEngine(union)
		srv, err := buyerserver.New(host, reg, engine, host.RemoteProxy("coord", coordinator.CAID))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		srv.Close()
		lb.Detach(host.Name())
		b.StartTimer()
	}
}

// BenchmarkQueryWorkflow measures the full Fig 4.2 round trip: HttpA → BSMA
// → BRA → MBA trip across the marketplaces → profile update →
// recommendations.
func BenchmarkQueryWorkflow(b *testing.B) {
	p := benchPlatform(b, 2)
	benchConsumer(b, p, "u")
	ctx := context.Background()
	q := catalog.Query{Category: "laptop", Terms: []string{"ssd"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Buyer().Query(ctx, "u", q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuyWorkflow measures Fig 4.3 with a list-price purchase.
func BenchmarkBuyWorkflow(b *testing.B) {
	p := benchPlatform(b, 2)
	benchConsumer(b, p, "u")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Buyer().Buy(ctx, "u", "p0", 0, false)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sale == nil {
			b.Fatal("no sale")
		}
	}
}

// BenchmarkItinerary is C1: trip cost as the marketplace count grows.
func BenchmarkItinerary(b *testing.B) {
	for _, markets := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("markets=%d", markets), func(b *testing.B) {
			p := benchPlatform(b, markets)
			benchConsumer(b, p, "u")
			ctx := context.Background()
			q := catalog.Query{Category: "laptop"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Buyer().Query(ctx, "u", q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchC2Platform stocks the probe target on every marketplace, so both
// competitors bargain at every stop.
func benchC2Platform(b *testing.B, markets int) *platform.Platform {
	b.Helper()
	p := benchPlatform(b, markets)
	for i := 0; i < markets; i++ {
		if err := p.Stock(i, &catalog.Product{
			ID: "target", Name: "Target", Category: "laptop",
			Terms: map[string]float64{"ssd": 1}, PriceCents: 100000,
			SellerID: "s", Stock: 1 << 30,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

// BenchmarkMBAvsRPC is C2 as a benchmark: the price-discovery probe by
// mobile agent versus by conventional remote calls, four marketplaces.
func BenchmarkMBAvsRPC(b *testing.B) {
	const markets = 4
	b.Run("mba", func(b *testing.B) {
		p := benchC2Platform(b, markets)
		benchConsumer(b, p, "u")
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Buyer().RunTask(ctx, "u", buyerserver.TaskSpec{
				Kind: buyerserver.TaskBuy, ProductID: "target", Probe: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rpc", func(b *testing.B) {
		p := benchC2Platform(b, markets)
		benchConsumer(b, p, "u")
		ctx := context.Background()
		host := p.Buyer().Host()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for mkt := 1; mkt <= markets; mkt++ {
				proxy := host.RemoteProxy(fmt.Sprintf("market-%d", mkt), marketplace.MSAID)
				if err := rpcProbeBench(ctx, proxy, "target"); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func rpcProbeBench(ctx context.Context, msa *aglet.Proxy, productID string) error {
	offer := int64(80000)
	msg, err := marshalBench(marketplace.KindNegoOpen, marketplace.NegoOpenRequest{
		BuyerID: "rpc", ProductID: productID, OfferCents: offer,
	})
	if err != nil {
		return err
	}
	replyMsg, err := msa.Send(ctx, msg)
	if err != nil {
		return err
	}
	var reply marketplace.NegoReply
	if err := unmarshalBench(replyMsg.Data, &reply); err != nil {
		return err
	}
	for !reply.Over {
		next, done := marketplace.ProbeNextOffer(offer, reply.AskCents)
		if done {
			return nil
		}
		offer = next
		msg, err := marshalBench(marketplace.KindNegoOffer, marketplace.NegoOfferRequest{
			SessionID: reply.SessionID, OfferCents: offer,
		})
		if err != nil {
			return err
		}
		replyMsg, err = msa.Send(ctx, msg)
		if err != nil {
			return err
		}
		if err := unmarshalBench(replyMsg.Data, &reply); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkLoginChurn is C6: consumer session turnover (BRA create/dispose).
func BenchmarkLoginChurn(b *testing.B) {
	p := benchPlatform(b, 1)
	ctx := context.Background()
	if err := p.Buyer().Register(ctx, "u"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Buyer().Login(ctx, "u"); err != nil {
			b.Fatal(err)
		}
		if err := p.Buyer().Logout(ctx, "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeactivateActivate is C7: parking and reviving an agent with
// state serialization, the §4.1(3) mechanism.
func BenchmarkDeactivateActivate(b *testing.B) {
	reg := aglet.NewRegistry()
	buyerserver.RegisterMBAType(reg)
	host := aglet.NewHost("h", reg)
	defer host.Close()
	init := []byte(`{"user_id":"u","spec":{"task_id":"t","kind":"query"},"itinerary":{"stops":["m"],"home":"h","index":0},"token":"x","nonce":"y","response":"z"}`)
	if _, err := host.Create("mba", "a", init); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := host.Deactivate("a"); err != nil {
			b.Fatal(err)
		}
		if _, err := host.Activate("a"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ------------------------------------------------

func BenchmarkAgentMessage(b *testing.B) {
	reg := aglet.NewRegistry()
	reg.Register("echo", func() aglet.Aglet { return &echoBenchAgent{} })
	host := aglet.NewHost("h", reg)
	defer host.Close()
	proxy, err := host.Create("echo", "e", nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	msg := aglet.Message{Kind: "ping", Data: []byte("x")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Send(ctx, msg); err != nil {
			b.Fatal(err)
		}
	}
}

type echoBenchAgent struct{ aglet.Base }

func (e *echoBenchAgent) HandleMessage(_ *aglet.Context, m aglet.Message) (aglet.Message, error) {
	return m, nil
}

func BenchmarkAgentDispatchLoopback(b *testing.B) {
	lb := aglet.NewLoopback()
	reg := aglet.NewRegistry()
	reg.Register("echo", func() aglet.Aglet { return &echoBenchAgent{} })
	h1 := aglet.NewHost("h1", reg)
	h2 := aglet.NewHost("h2", reg)
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)
	if _, err := h1.Create("echo", "mover", nil); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := h1, h2
		if i%2 == 1 {
			src, dst = h2, h1
		}
		if err := src.Dispatch(ctx, "mover", dst.Name()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStorePut(b *testing.B) {
	s := kvstore.New()
	val := []byte(`{"weight":0.42}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("b", fmt.Sprintf("k%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStoreWALPut(b *testing.B) {
	s, err := kvstore.Open(b.TempDir() + "/bench.wal")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := []byte(`{"weight":0.42}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("b", fmt.Sprintf("k%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	cfg := workload.Config{Seed: 1, Users: 100, Products: 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// guard against compiler optimizing benchmarks with unused results.
var _ = time.Now
