package agentrec

import (
	"encoding/json"
	"fmt"

	"agentrec/internal/aglet"
)

func marshalBench(kind string, v any) (aglet.Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return aglet.Message{}, fmt.Errorf("bench: encoding %s: %w", kind, err)
	}
	return aglet.Message{Kind: kind, Data: data}, nil
}

func unmarshalBench(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("bench: decoding: %w", err)
	}
	return nil
}
