// Offline: the §3.2 promise that "the consumer recommendation mechanism can
// automatically serve consumer with assigned tasks even if consumer is
// offline." The consumer starts a purchase over a deliberately slow
// network, logs out while their Mobile Buyer Agent is still travelling, and
// finds the completed transaction waiting in their inbox at the next login.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentrec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := agentrec.New(
		agentrec.WithMarketplaces(3),
		agentrec.WithProducts(
			&agentrec.Product{ID: "tv-1", Name: "BigScreen", Category: "tv",
				Terms: map[string]float64{"oled": 1}, PriceCents: 399900, SellerID: "s1", Stock: 2},
		),
	)
	if err != nil {
		return err
	}
	defer p.Close()

	// Simulate a slow wide-area network: every agent hop takes 80ms.
	p.Internal().Loopback.SetPerHop(func(string) { time.Sleep(80 * time.Millisecond) })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dana, err := p.NewConsumer(ctx, "dana")
	if err != nil {
		return err
	}

	// Launch the purchase in the background — the MBA is now on the road.
	done := make(chan error, 1)
	go func() {
		_, err := dana.Buy(ctx, "tv-1", 0, false)
		done <- err
	}()

	// Dana closes her laptop while the agent is still out shopping.
	time.Sleep(120 * time.Millisecond)
	if err := dana.Logout(ctx); err != nil {
		return err
	}
	fmt.Println("dana logged out; her Mobile Buyer Agent keeps working...")

	if err := <-done; err != nil {
		return err
	}

	// Next morning: the completed purchase is waiting.
	inbox, err := dana.Login(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("dana logged back in: %d completed task(s) in the inbox\n", len(inbox))
	for _, res := range inbox {
		if res.Sale != nil {
			fmt.Printf("  bought %s for $%.2f while offline (receipt %s)\n",
				res.Sale.ProductID, float64(res.Sale.PriceCents)/100, res.Sale.Receipt)
		}
	}
	return nil
}
