// Pricehunt: the headline mobile-agent scenario from the paper's
// introduction. The same product is listed at different prices on four
// marketplaces; instead of the consumer browsing each site (drawback 2 of
// the abstract), one Mobile Buyer Agent visits them all, and a negotiated
// purchase closes below list price. The example prints the trip and the
// transport traffic, illustrating the §1 claim that mobile agents reduce
// network chatter to one dispatch per hop.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentrec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := agentrec.New(agentrec.WithMarketplaces(4))
	if err != nil {
		return err
	}
	defer p.Close()

	// The same camera at four prices; the variant product ids differ per
	// market because each marketplace runs its own catalog.
	prices := []int64{74900, 69900, 82900, 71900}
	for i, price := range prices {
		if err := p.Stock(i, &agentrec.Product{
			ID: "cam-pro", Name: "ProShot X", Category: "camera",
			Terms: map[string]float64{"lens": 1, "pro": 0.8}, PriceCents: price,
			SellerID: fmt.Sprintf("seller-%d", i+1), Stock: 3,
		}); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hunter, err := p.NewConsumer(ctx, "hunter")
	if err != nil {
		return err
	}

	// First: one query trip shows every market's offer.
	res, err := hunter.Query(ctx, agentrec.Query{Category: "camera", Terms: []string{"pro"}})
	if err != nil {
		return err
	}
	fmt.Println("== one agent, four marketplaces ==")
	for _, mr := range res.Results {
		for _, m := range mr.Matches {
			fmt.Printf("  %-9s lists %s at $%.2f\n", mr.Market, m.Product.Name, float64(m.Product.PriceCents)/100)
		}
	}

	// Then: a negotiated buy. The agent haggles market by market and buys
	// at the first acceptable deal within budget. Budget below every list
	// price forces real negotiation.
	buy, err := hunter.Buy(ctx, "cam-pro", 68000, true)
	if err != nil {
		return err
	}
	fmt.Println("== negotiated purchase ==")
	for _, mr := range buy.Results {
		switch {
		case mr.Sale != nil:
			fmt.Printf("  %-9s DEAL at $%.2f (list was higher; %d rounds)\n",
				mr.Market, float64(mr.Sale.PriceCents)/100, mr.Nego.Round)
		case mr.Nego != nil:
			fmt.Printf("  %-9s no deal; seller's last ask $%.2f\n", mr.Market, float64(mr.Nego.AskCents)/100)
		case mr.Err != "":
			fmt.Printf("  %-9s error: %s\n", mr.Market, mr.Err)
		}
	}
	if buy.Sale == nil {
		fmt.Println("  no marketplace met the budget — try raising it")
	} else {
		fmt.Printf("  receipt: %s\n", buy.Sale.Receipt)
	}
	return nil
}
