// Community: collaborative filtering over a synthetic consumer community.
// A generated universe of consumers with latent tastes seeds the
// recommendation engine; the example then compares what the mechanism
// recommends for a warm consumer (profile + neighbours), versus a
// cold-start consumer (no history — §2.3's known CF limitation, handled by
// the top-seller fallback).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentrec"
	"agentrec/internal/platform"
	"agentrec/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A universe of 200 consumers over 400 products in 8 categories.
	u, err := workload.Generate(workload.Config{
		Seed: 2004, Users: 200, Products: 400, Categories: 8, RelevantPerUser: 16,
	})
	if err != nil {
		return err
	}

	p, err := agentrec.New(
		agentrec.WithMarketplaces(2),
		agentrec.WithProducts(u.Products...),
		agentrec.WithEngineOptions(agentrec.WithNeighbors(10)),
	)
	if err != nil {
		return err
	}
	defer p.Close()

	// Seed the community: every synthetic consumer's learned profile and
	// purchase history enters the engine, as if they had all been shopping
	// through the mechanism.
	if err := seed(p, u); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A warm consumer: shops a little, then gets community-powered
	// recommendations.
	warm, err := p.NewConsumer(ctx, "warm-shopper")
	if err != nil {
		return err
	}
	seedUser := u.Users[0]
	var firstCat string
	for cat := range seedUser.Tastes {
		firstCat = cat
		break
	}
	if _, err := warm.Query(ctx, agentrec.Query{Category: firstCat}); err != nil {
		return err
	}
	// Buy two products the seed user liked, acquiring their taste.
	bought := 0
	for _, ev := range seedUser.Train {
		if bought == 2 {
			break
		}
		if _, err := warm.Buy(ctx, ev.ProductID, 0, false); err == nil {
			bought++
		}
	}
	recs, err := warm.Recommendations("", 8)
	if err != nil {
		return err
	}
	fmt.Println("== warm consumer (2 purchases) ==")
	held := make(map[string]bool, len(seedUser.Held))
	for _, id := range seedUser.Held {
		held[id] = true
	}
	hits := 0
	for _, r := range recs {
		marker := ""
		if held[r.ProductID] {
			marker = "  <- matches the latent taste (held-out ground truth)"
			hits++
		}
		fmt.Printf("  %-8s %.3f %s%s\n", r.ProductID, r.Score, r.Source, marker)
	}
	fmt.Printf("  %d/%d recommendations hit the taste-alike's held-out set\n\n", hits, len(recs))

	// A cold-start consumer: no profile, no history. The mechanism falls
	// back to top sellers and says so.
	cold, err := p.NewConsumer(ctx, "cold-shopper")
	if err != nil {
		return err
	}
	coldRecs, err := cold.Recommendations("", 5)
	if err != nil {
		return err
	}
	fmt.Println("== cold-start consumer ==")
	for _, r := range coldRecs {
		fmt.Printf("  %-8s %.3f %s\n", r.ProductID, r.Score, r.Source)
	}

	// The §5.2 future-work features, implemented: the week's hottest
	// merchandise and tied-sale associations for the warm shopper's first
	// purchase.
	fmt.Println("\n== this week's hottest merchandise ==")
	for _, e := range p.Hottest(time.Now(), 7*24*time.Hour, 5) {
		fmt.Printf("  %-8s %d purchases (score %.2f)\n", e.ProductID, e.Count, e.Score)
	}
	if bought > 0 {
		anchor := seedUser.Train[0].ProductID
		ties := p.TiedSales(anchor, 2, 5)
		fmt.Printf("\n== frequently bought with %s ==\n", anchor)
		if len(ties) == 0 {
			fmt.Println("  (no associations with support >= 2 yet)")
		}
		for _, tie := range ties {
			fmt.Printf("  %-8s confidence %.2f (support %d)\n", tie.ProductID, tie.Confidence, tie.Support)
		}
	}
	return nil
}

// seed installs the universe's profiles and purchases into the platform's
// engine. It uses the internal platform handle because seeding bypasses the
// shopping workflows on purpose (200 consumers would otherwise need 200
// logins and trips just to warm the community).
func seed(p *agentrec.Platform, u *workload.Universe) error {
	inner := platformOf(p)
	for _, usr := range u.Users {
		prof, err := u.BuildProfile(usr)
		if err != nil {
			return err
		}
		if err := inner.Engine.SetProfile(prof); err != nil {
			return err
		}
	}
	// Timestamps spread over the past week so the §5.2 trending window and
	// tied-sale baskets see the seeded history too.
	now := time.Now()
	i := 0
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			age := time.Duration(i%(7*24)) * time.Hour
			if err := inner.Engine.RecordPurchaseAt(user, pid, now.Add(-age)); err != nil {
				return err
			}
			i++
		}
	}
	return nil
}

// platformOf reaches the internal composition root. Examples live in the
// same module, so this is ordinary access, not an API promise.
func platformOf(p *agentrec.Platform) *platform.Platform { return p.Internal() }
