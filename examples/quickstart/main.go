// Quickstart: boot the agent-based e-commerce platform, shop as one
// consumer, and print the recommendation information the mechanism
// generates — the smallest end-to-end tour of the paper's system.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentrec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two marketplaces, stocked round-robin with a small catalog.
	p, err := agentrec.New(
		agentrec.WithMarketplaces(2),
		agentrec.WithProducts(
			&agentrec.Product{ID: "lap-ultra", Name: "UltraBook 13", Category: "laptop",
				Terms: map[string]float64{"ssd": 1, "light": 0.9}, PriceCents: 129900, SellerID: "acme", Stock: 10},
			&agentrec.Product{ID: "lap-game", Name: "GameBook 17", Category: "laptop",
				Terms: map[string]float64{"gpu": 1, "ssd": 0.5}, PriceCents: 219900, SellerID: "acme", Stock: 10},
			&agentrec.Product{ID: "lap-budget", Name: "EconoBook", Category: "laptop",
				Terms: map[string]float64{"hdd": 1}, PriceCents: 59900, SellerID: "bmart", Stock: 10},
			&agentrec.Product{ID: "cam-zoom", Name: "ZoomMaster", Category: "camera",
				Terms: map[string]float64{"zoom": 1, "lens": 0.7}, PriceCents: 89900, SellerID: "bmart", Stock: 10},
		),
	)
	if err != nil {
		return err
	}
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Register and log in: the mechanism creates alice's Buyer Recommend
	// Agent, her personal shopper.
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		return err
	}

	// A merchandise query: a Mobile Buyer Agent migrates to both
	// marketplaces, gathers matches, and the mechanism turns them into
	// recommendations.
	res, err := alice.Query(ctx, agentrec.Query{Category: "laptop", Terms: []string{"ssd"}})
	if err != nil {
		return err
	}
	fmt.Println("== query: laptops with ssd ==")
	for _, mr := range res.Results {
		fmt.Printf("  %s returned %d matches\n", mr.Market, len(mr.Matches))
	}
	for _, r := range res.Recommendations {
		fmt.Printf("  recommended: %-12s score %.3f (%s)\n", r.ProductID, r.Score, r.Source)
	}

	// Buy with negotiation: the agent haggles the seller down within
	// budget.
	buy, err := alice.Buy(ctx, "lap-ultra", 120000, true)
	if err != nil {
		return err
	}
	if buy.Sale != nil {
		fmt.Printf("== bought %s for $%.2f via %s (receipt %s)\n",
			buy.Sale.ProductID, float64(buy.Sale.PriceCents)/100, buy.Sale.Via, buy.Sale.Receipt)
	}

	// The profile learned from the behaviour; browse recommendations.
	recs, err := alice.Recommendations("", 5)
	if err != nil {
		return err
	}
	fmt.Println("== you might also like ==")
	for _, r := range recs {
		fmt.Printf("  %-12s score %.3f (%s)\n", r.ProductID, r.Score, r.Source)
	}
	return nil
}
