// Package agentrec is an agent-based consumer recommendation mechanism for
// electronic marketplaces: a Go reproduction of Wang, Hwang and Wang,
// "An Agent-Based Consumer Recommendation Mechanism" (2004).
//
// The library boots a complete agent-based e-commerce platform in process:
// a coordinator, one or more marketplaces offering query, negotiation, and
// auction services, seller-feed integration, and a Buyer Agent Server — the
// recommendation mechanism — where a Buyer Recommend Agent represents each
// online consumer and Mobile Buyer Agents physically migrate between
// marketplace hosts to shop. Consumer behaviour feeds hierarchical interest
// profiles (Fig 4.4 of the paper); profile similarity with a
// preference-value discard gate (Fig 4.5) drives collaborative filtering,
// combined with content-based information filtering.
//
// # Quickstart
//
//	p, err := agentrec.New(agentrec.WithMarketplaces(2))
//	// handle err, defer p.Close()
//	p.MustStock(0, &agentrec.Product{ID: "lap1", Category: "laptop", ...})
//	alice, err := p.NewConsumer(ctx, "alice")
//	res, err := alice.Query(ctx, agentrec.Query{Category: "laptop"})
//	// res.Recommendations holds the mechanism's suggestions
//
// See examples/ for runnable scenarios and DESIGN.md for the architecture.
package agentrec

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/ops"
	"agentrec/internal/platform"
	"agentrec/internal/recommend"
	"agentrec/internal/trace"
)

// Re-exported core types; the internal packages define them once.
type (
	// Product is one piece of merchandise. Prices are integer cents.
	Product = catalog.Product
	// Query is a merchandise search request.
	Query = catalog.Query
	// Match is one query hit with its relevance score.
	Match = catalog.Match
	// Rec is one recommended product.
	Rec = recommend.Rec
	// TaskResult is the outcome of a shopping task: per-marketplace
	// results, the completed sale if any, and recommendation information.
	TaskResult = buyerserver.TaskResult
	// TaskSpec describes a custom shopping task for RunTask.
	TaskSpec = buyerserver.TaskSpec
)

// Task kinds for TaskSpec.
const (
	TaskQuery   = buyerserver.TaskQuery
	TaskBuy     = buyerserver.TaskBuy
	TaskAuction = buyerserver.TaskAuction
)

// Platform is a running instance of the full agent-based e-commerce
// architecture. Construct with New; always Close it.
type Platform struct {
	inner  *platform.Platform
	tracer *trace.Recorder
}

// Option configures New.
type Option func(*platform.Config)

// WithMarketplaces sets the number of marketplaces (default 2).
func WithMarketplaces(n int) Option {
	return func(c *platform.Config) { c.Marketplaces = n }
}

// WithProducts stocks initial merchandise, distributed round-robin across
// the marketplaces.
func WithProducts(products ...*Product) Option {
	return func(c *platform.Config) { c.Products = append(c.Products, products...) }
}

// WithTracer records every workflow step (the numbered arrows of the
// paper's Figs 4.1–4.3) into r for inspection.
func WithTracer(r *trace.Recorder) Option {
	return func(c *platform.Config) { c.Tracer = r }
}

// WithEngineOptions tunes the recommendation engine (neighbourhood size,
// discard tolerance, hybrid weight).
func WithEngineOptions(opts ...recommend.Option) Option {
	return func(c *platform.Config) { c.EngineOpts = append(c.EngineOpts, opts...) }
}

// WithEngineShards sets how many user-keyed shards the recommendation
// engine partitions its community state into (default 16). More shards
// reduce write contention under heavy parallel traffic; recommendation
// results are identical for any shard count.
func WithEngineShards(n int) Option {
	return func(c *platform.Config) { c.EngineShards = n }
}

// NeighborSearch selects how CF's neighbour search enumerates candidates;
// see the SearchExact and SearchLSH modes.
type NeighborSearch = recommend.NeighborSearch

// Neighbor search modes for WithNeighborSearch.
const (
	// SearchExact scans the exact per-category candidate lists — the
	// paper-faithful default and the online recall baseline.
	SearchExact = recommend.SearchExact
	// SearchLSH shortlists large categories through a random-hyperplane
	// LSH index and re-ranks the shortlist with the exact Fig 4.5 scorer:
	// approximate in who gets scored, exact in how.
	SearchLSH = recommend.SearchLSH
)

// WithNeighborSearch sets the neighbour search mode of every
// recommendation engine (default SearchExact). SearchLSH breaks the
// linear read-path ceiling for categories with very large communities at
// a small, measured recall cost; see DESIGN.md "Neighbor search".
func WithNeighborSearch(m NeighborSearch) Option {
	return func(c *platform.Config) { c.NeighborSearch = m }
}

// WithANNProbes sets the LSH multi-probe width per hash table (the recall
// knob; engine default when zero). Only meaningful with
// WithNeighborSearch(SearchLSH).
func WithANNProbes(n int) Option {
	return func(c *platform.Config) { c.ANNProbes = n }
}

// WithBuyerServers boots n Buyer Agent Servers (default 1) — the paper's
// multi-server deployment of Fig 3.1. Combine with WithReplicatedEngines
// so each server answers recommendations from its own replica of the
// community instead of sharing one in-process engine.
func WithBuyerServers(n int) Option {
	return func(c *platform.Config) { c.BuyerServers = n }
}

// WithReplicatedEngines gives every Buyer Agent Server its own
// recommendation engine, with per-shard ownership, owner-routed writes,
// and journal-tail replication keeping the replicas converged. See
// DESIGN.md "Replication".
func WithReplicatedEngines() Option {
	return func(c *platform.Config) { c.ReplicateEngines = true }
}

// WithElasticOwnership puts shard ownership under the Coordinator Server's
// lease authority instead of the static shard%N map: every Buyer Agent
// Server renews an ownership lease each interval (1s when zero; the
// authority's lease TTL is three times it), writes route by the leased
// epoch-versioned ownership map, every routed write and replication pull
// is epoch-fenced, and when an owner's lease lapses its shards are
// promoted to the most caught-up live follower. Map transitions surface as
// `ownership` events with WithEvents. Requires WithReplicatedEngines; see
// DESIGN.md "Ownership & failover".
func WithElasticOwnership(interval time.Duration) Option {
	return func(c *platform.Config) {
		c.ElasticOwnership = true
		c.OwnershipLease = interval
	}
}

// WithStateDir makes the platform durable under dir (created if absent):
// the recommendation engine write-through journals every consumer profile,
// purchase, and sell count to a WAL-backed store and recovers the whole
// community on New, and each Buyer Agent Server persists its UserDB and
// BSMDB the same way. A platform restarted on the same dir answers with
// the same recommendations it gave before the restart. Combine with
// WithEngineOptions(recommend.WithMaxResidentShards(n)) to bound how much
// of the community stays in memory, and WithCompaction to bound the
// journal itself.
func WithStateDir(dir string) Option {
	return func(c *platform.Config) { c.StateDir = dir }
}

// WithCompaction enables automatic crash-safe compaction of the durable
// community journal: whenever the WAL grows past ratio times its encoded
// live state it is rewritten down to live state in the background, so a
// long-lived platform's restart time stays bounded. Zero ratio keeps
// compaction manual; only meaningful together with WithStateDir. See
// DESIGN.md "Compaction".
func WithCompaction(ratio float64) Option {
	return func(c *platform.Config) { c.CompactRatio = ratio }
}

// WithEvents turns on the platform's event plane: every engine and
// replicator publishes structured ops events (journal appends, replication
// lag transitions, compaction passes, recommendation deltas) onto one
// process-wide bus, a heartbeat publishes a whole-platform Snapshot every
// interval (DefaultEventsInterval when zero), and the buyer servers' HTTP
// surface streams it all at GET /events. Consume in process with
// Platform.Subscribe. Publishing is allocation-free and never blocks
// engine writes; slow consumers lose oldest events with exact drop
// accounting. See DESIGN.md "Event plane".
func WithEvents(interval time.Duration) Option {
	return func(c *platform.Config) {
		c.Events = true
		c.EventsInterval = interval
	}
}

// Event-plane re-exports; see package ops for the full model.
type (
	// Event is one structured occurrence on the platform's event plane.
	Event = ops.Event
	// EventKind names an Event's payload variant.
	EventKind = ops.Kind
	// Snapshot is the unified whole-platform stats view served by
	// Platform.Metrics, /metrics/snapshot, and the heartbeat.
	Snapshot = ops.Snapshot
	// Subscription is a live event feed from Platform.Subscribe; read it
	// with Next until ops.ErrSubscriptionClosed.
	Subscription = ops.Subscription
)

// Event kinds for Platform.Subscribe and the ?kinds= filter of GET /events.
const (
	KindSnapshot   = ops.KindSnapshot
	KindRecDelta   = ops.KindRecDelta
	KindJournal    = ops.KindJournal
	KindLag        = ops.KindLag
	KindCompaction = ops.KindCompaction
	KindOwnership  = ops.KindOwnership
	KindDropped    = ops.KindDropped
)

// DefaultEventsInterval is the heartbeat period WithEvents(0) selects.
const DefaultEventsInterval = platform.DefaultEventsInterval

// Engine re-exports; see package recommend for the full set.
var (
	// WithNeighbors sets the collaborative-filtering neighbourhood size.
	WithNeighbors = recommend.WithNeighbors
	// WithTolerance sets the Fig 4.5 preference-value discard tolerance.
	WithTolerance = recommend.WithTolerance
	// WithHybridWeight sets the CF share of the hybrid mix.
	WithHybridWeight = recommend.WithHybridWeight
)

// New boots a platform.
func New(opts ...Option) (*Platform, error) {
	var cfg platform.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	tracer := cfg.Tracer
	inner, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: inner, tracer: tracer}, nil
}

// Close shuts the platform down, waiting for every agent goroutine.
func (p *Platform) Close() error { return p.inner.Close() }

// Internal exposes the composition root for in-module tools (examples,
// benchmarks, cmd/recbench) that seed communities or inspect servers
// directly. It is an escape hatch, not API.
func (p *Platform) Internal() *platform.Platform { return p.inner }

// Stock adds a product to marketplace i (and the integrated catalog the
// recommender sees).
func (p *Platform) Stock(i int, prod *Product) error { return p.inner.Stock(i, prod) }

// MustStock is Stock for program setup: it panics on error.
func (p *Platform) MustStock(i int, prod *Product) {
	if err := p.inner.Stock(i, prod); err != nil {
		panic(fmt.Sprintf("agentrec: stocking %s: %v", prod.ID, err))
	}
}

// IntegrateJSONFeed ingests a seller's JSON product feed into marketplace i
// through the seller-server integration.
func (p *Platform) IntegrateJSONFeed(i int, r io.Reader, sellerID string) (int, error) {
	return p.inner.IntegrateJSONFeed(i, r, sellerID)
}

// IntegrateCSVFeed ingests a seller's legacy CSV feed into marketplace i.
func (p *Platform) IntegrateCSVFeed(i int, r io.Reader, sellerID string) (int, error) {
	return p.inner.IntegrateCSVFeed(i, r, sellerID)
}

// OpenAuction opens an English auction for one unit of productID on
// marketplace i, returning the auction id consumers bid on.
func (p *Platform) OpenAuction(i int, productID string, reserveCents int64) (string, error) {
	if i < 0 || i >= len(p.inner.Markets) {
		return "", fmt.Errorf("agentrec: no marketplace %d", i)
	}
	return p.inner.Markets[i].AuctionOpen(productID, reserveCents)
}

// CloseAuction ends an auction; the high bidder, if any, wins.
func (p *Platform) CloseAuction(i int, auctionID string) (winner string, priceCents int64, sold bool, err error) {
	if i < 0 || i >= len(p.inner.Markets) {
		return "", 0, false, fmt.Errorf("agentrec: no marketplace %d", i)
	}
	st, err := p.inner.Markets[i].AuctionClose(auctionID)
	if err != nil {
		return "", 0, false, err
	}
	if !st.Sold {
		return "", 0, false, nil
	}
	return st.Sale.BuyerID, st.Sale.PriceCents, true, nil
}

// MarketName returns the host name of marketplace i, used to address bids.
func (p *Platform) MarketName(i int) string {
	if i < 0 || i >= len(p.inner.Markets) {
		return ""
	}
	return p.inner.Markets[i].Host().Name()
}

// HTTPHandler exposes the buyer agent server's web interface (the paper's
// HttpA): registration, login, shopping tasks and recommendations as JSON
// over HTTP.
func (p *Platform) HTTPHandler() http.Handler { return p.inner.Buyer().HTTPHandler() }

// Metrics returns the unified whole-platform stats snapshot — every buyer
// server's engine sizing plus replication status when replicated. Works
// with or without WithEvents.
func (p *Platform) Metrics() Snapshot { return p.inner.Metrics() }

// Subscribe attaches an in-process consumer to the event plane, filtered
// to kinds (none = all). Requires WithEvents; the subscription closes when
// ctx is cancelled.
func (p *Platform) Subscribe(ctx context.Context, kinds ...EventKind) (*Subscription, error) {
	return p.inner.Subscribe(ctx, kinds...)
}

// Hottest returns the trending merchandise of the window ending now — the
// "weekly hottest merchandise" of the paper's future work (§5.2 item 2).
func (p *Platform) Hottest(now time.Time, window time.Duration, n int) []recommend.TrendEntry {
	return p.inner.Engine.Trending(now, window, n)
}

// TiedSales returns products frequently bought together with productID —
// the "tied-sale information" of §5.2 item 2.
func (p *Platform) TiedSales(productID string, minSupport, n int) []recommend.TiedSale {
	return p.inner.Engine.TiedSales(productID, minSupport, n)
}

// NewConsumer registers userID and logs them in, returning their handle.
func (p *Platform) NewConsumer(ctx context.Context, userID string) (*Consumer, error) {
	b := p.inner.Buyer()
	if err := b.Register(ctx, userID); err != nil {
		return nil, err
	}
	if _, err := b.Login(ctx, userID); err != nil {
		return nil, err
	}
	return &Consumer{platform: p, id: userID}, nil
}

// Consumer is one logged-in shopper, served by their Buyer Recommend Agent.
type Consumer struct {
	platform *Platform
	id       string
}

// ID returns the consumer's identifier.
func (c *Consumer) ID() string { return c.id }

// Query dispatches a Mobile Buyer Agent across every marketplace to find
// merchandise, returning matches and recommendation information (Fig 4.2).
func (c *Consumer) Query(ctx context.Context, q Query) (TaskResult, error) {
	return c.platform.inner.Buyer().Query(ctx, c.id, q)
}

// Buy purchases productID at the first marketplace within budget
// (0 = list price anywhere); with negotiate set the agent haggles
// (Fig 4.3).
func (c *Consumer) Buy(ctx context.Context, productID string, budgetCents int64, negotiate bool) (TaskResult, error) {
	return c.platform.inner.Buyer().Buy(ctx, c.id, productID, budgetCents, negotiate)
}

// Bid sends the consumer's agent to place one bid on an auction.
func (c *Consumer) Bid(ctx context.Context, marketName, auctionID string, budgetCents int64) (TaskResult, error) {
	return c.platform.inner.Buyer().Bid(ctx, c.id, marketName, auctionID, budgetCents)
}

// RunTask executes a custom task specification.
func (c *Consumer) RunTask(ctx context.Context, spec TaskSpec) (TaskResult, error) {
	return c.platform.inner.Buyer().RunTask(ctx, c.id, spec)
}

// Recommendations returns personalized suggestions outside any task.
func (c *Consumer) Recommendations(category string, n int) ([]Rec, error) {
	return c.platform.inner.Buyer().Recommendations(c.id, category, n)
}

// Logout takes the consumer offline; their agent terminates, but tasks in
// flight still complete and wait in the inbox.
func (c *Consumer) Logout(ctx context.Context) error {
	return c.platform.inner.Buyer().Logout(ctx, c.id)
}

// Login brings the consumer back online, delivering results that completed
// while they were away.
func (c *Consumer) Login(ctx context.Context) ([]TaskResult, error) {
	return c.platform.inner.Buyer().Login(ctx, c.id)
}
